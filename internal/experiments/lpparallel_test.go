package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// lpCfg returns a small observed config with the LP-parallel substrate
// toggled — Trace and Metrics are on so the comparison covers span
// events and snapshots, not just samples.
func lpCfg(requests int, lp bool) Config {
	return Config{
		Requests:   requests,
		Seed:       1,
		LPParallel: lp,
		Observe:    Observe{Trace: true, Metrics: true},
	}
}

// sameRun asserts two runs are identical in every observable: samples,
// power, elapsed time, span events, and canonical snapshot bytes.
func sameRun(t *testing.T, tag string, a, b Run) {
	t.Helper()
	if (a.Snap == nil) != (b.Snap == nil) {
		t.Fatalf("%s: snapshot presence differs", tag)
	}
	if a.Snap != nil {
		aj, err := obs.MarshalSnapshot(*a.Snap)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := obs.MarshalSnapshot(*b.Snap)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aj, bj) {
			t.Fatalf("%s: snapshot bytes diverge between substrates", tag)
		}
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("%s: %d span events vs %d", tag, len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("%s: span event %d diverges: %+v vs %+v", tag, i, a.Events[i], b.Events[i])
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: runs diverge between substrates:\nsequential: %+v\nlp-parallel: %+v", tag, a, b)
	}
}

// TestLPParallelFig2Identity: the Figure 2 limit study answers
// byte-identically on the sequential engine and the partitioned
// engine's windowed runtime.
func TestLPParallelFig2Identity(t *testing.T) {
	w := trace.Websearch()
	seq, err := LimitStudy(w, lpCfg(3000, false))
	if err != nil {
		t.Fatal(err)
	}
	par, err := LimitStudy(w, lpCfg(3000, true))
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, "fig2/MD", seq.MD, par.MD)
	sameRun(t, "fig2/HC-SD", seq.HCSD, par.HCSD)
}

// TestLPParallelFig5Identity: the Figure 5 multi-actuator sweep is
// substrate-independent.
func TestLPParallelFig5Identity(t *testing.T) {
	w := trace.Websearch()
	seq, err := MultiActuator(w, lpCfg(3000, false), 2)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MultiActuator(w, lpCfg(3000, true), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Runs) != len(par.Runs) {
		t.Fatalf("fig5: %d runs vs %d", len(seq.Runs), len(par.Runs))
	}
	for i := range seq.Runs {
		sameRun(t, "fig5/SA", seq.Runs[i], par.Runs[i])
	}
	sameRun(t, "fig5/MD", seq.MD, par.MD)
}

// TestLPParallelFig8Identity: the Figure 8 RAID study — the heaviest
// consumer of the substrate swap — is substrate-independent point by
// point, snapshots included.
func TestLPParallelFig8Identity(t *testing.T) {
	opts := RAIDStudyOpts{
		DiskCounts:  []int{1, 2},
		Families:    []int{1, 2},
		Intensities: []workload.Intensity{workload.Heavy},
	}
	seq, err := RunRAIDStudy(lpCfg(2000, false), opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunRAIDStudy(lpCfg(2000, true), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) != len(par.Points) {
		t.Fatalf("fig8: %d points vs %d", len(seq.Points), len(par.Points))
	}
	for i := range seq.Points {
		a, b := seq.Points[i], par.Points[i]
		if a.P90 != b.P90 || a.MeanResp != b.MeanResp || a.Power != b.Power {
			t.Fatalf("fig8 point %d (%s x%d): %+v vs %+v diverge between substrates",
				i, a.Label(), a.Drives, a, b)
		}
		if (a.Snap == nil) != (b.Snap == nil) {
			t.Fatalf("fig8 point %d: snapshot presence differs", i)
		}
		if a.Snap != nil {
			aj, _ := obs.MarshalSnapshot(*a.Snap)
			bj, _ := obs.MarshalSnapshot(*b.Snap)
			if !bytes.Equal(aj, bj) {
				t.Fatalf("fig8 point %d: snapshot bytes diverge", i)
			}
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("fig8 point %d: span events diverge", i)
		}
	}
}

// TestLPParallelWhatIfIdentity: a served what-if answer is the same
// bytes whichever substrate computed it — which is what makes
// lp_parallel safe to carry in the cache key as a how-it-was-computed
// record rather than a result dimension.
func TestLPParallelWhatIfIdentity(t *testing.T) {
	q := WhatIfQuery{Workload: "Websearch", Actuators: 2, Requests: 2000, Seed: 7}
	seq, err := RunWhatIf(context.Background(), q, 7, Observe{Trace: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	q.LPParallel = true
	par, err := RunWhatIf(context.Background(), q, 7, Observe{Trace: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, "whatif", seq.Run, par.Run)
	if seq.HealthyArms != par.HealthyArms || seq.FaultsInjected != par.FaultsInjected {
		t.Fatalf("whatif fault state diverges: %+v vs %+v", seq, par)
	}
}

// TestLPRAIDWorkerIdentity: the genuinely multi-LP scenario produces
// identical results at one worker and many — the window protocol, not
// scheduling luck, fixes the outcome.
func TestLPRAIDWorkerIdentity(t *testing.T) {
	run := func(workers int) *LPRAIDResult {
		r, err := LPRAID(lpCfg(3000, false), LPRAIDOpts{Drives: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	one, many := run(1), run(4)
	if one.Windows != many.Windows {
		t.Fatalf("windows %d vs %d", one.Windows, many.Windows)
	}
	if one.Windows < 2 {
		t.Fatalf("degenerate run: %d windows", one.Windows)
	}
	aj, err := obs.MarshalSnapshot(*one.Snap)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := obs.MarshalSnapshot(*many.Snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("snapshot bytes diverge across worker counts")
	}
	if !reflect.DeepEqual(one.Resp, many.Resp) {
		t.Fatalf("response samples diverge across worker counts")
	}
	if !reflect.DeepEqual(one.Events, many.Events) {
		t.Fatalf("span events diverge across worker counts")
	}
}
