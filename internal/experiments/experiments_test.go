package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/simkit"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Tests in this package run the real experiment drivers at reduced
// request counts; they assert the paper's qualitative findings, which is
// exactly what the reproduction must preserve.

func testConfig() Config { return Config{Requests: 12000, Seed: 1} }

func TestConfigValidation(t *testing.T) {
	if err := (Config{Requests: 0}).Validate(); err == nil {
		t.Fatalf("zero requests accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestMDDriveModelMapping(t *testing.T) {
	for _, w := range trace.Workloads() {
		m, err := MDDriveModel(w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if m.RPM != w.RPM {
			t.Errorf("%s: MD drive RPM %v, want %v", w.Name, m.RPM, w.RPM)
		}
		if m.Geom.Platters != w.Platters {
			t.Errorf("%s: MD drive platters %d, want %d", w.Name, m.Geom.Platters, w.Platters)
		}
	}
	if _, err := MDDriveModel(trace.WorkloadSpec{Name: "bogus"}); err == nil {
		t.Fatalf("unknown workload accepted")
	}
}

func TestHCSDTraceFitsBarracuda(t *testing.T) {
	for _, w := range trace.Workloads() {
		tr, err := trace.Generate(w.WithRequests(2000), 1)
		if err != nil {
			t.Fatal(err)
		}
		remapped, err := HCSDTrace(w, tr)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(remapped) != len(tr) {
			t.Fatalf("%s: remap changed length", w.Name)
		}
		// Everything must fit on the 750 GB drive (the paper's premise).
		const barracudaSectors = 750e9 / 512
		for i, r := range remapped {
			if r.Disk != 0 {
				t.Fatalf("%s: request %d still targets disk %d", w.Name, i, r.Disk)
			}
			if float64(r.End()) > barracudaSectors {
				t.Fatalf("%s: request %d beyond the drive", w.Name, i)
			}
		}
	}
}

// Figure 2: replacing the array with one drive loses performance for the
// I/O-intensive workloads but barely for TPC-H.
func TestLimitStudyFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, w := range trace.Workloads() {
		ls, err := LimitStudy(w, testConfig())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		mdAt20 := ls.MD.Resp.FractionAtMost(20)
		hcAt20 := ls.HCSD.Resp.FractionAtMost(20)
		if hcAt20 > mdAt20 {
			t.Errorf("%s: HC-SD (%.3f) outperformed MD (%.3f) at 20 ms", w.Name, hcAt20, mdAt20)
		}
		// The paper's TPC-H exception, in its own terms (§7.1): TPC-H's
		// mean response stays below its mean inter-arrival time even on
		// the single drive — the storage system keeps servicing requests
		// faster than they arrive — while the other three workloads
		// cannot keep up on HC-SD.
		keepsUp := ls.HCSD.Resp.Mean() < w.MeanInterArrivalMs
		if w.Name == "TPC-H" && !keepsUp {
			t.Errorf("TPC-H HC-SD mean %.2f ms exceeds inter-arrival %.2f ms",
				ls.HCSD.Resp.Mean(), w.MeanInterArrivalMs)
		}
		if w.Name != "TPC-H" && keepsUp {
			t.Errorf("%s: HC-SD unexpectedly keeps up with arrivals (mean %.2f < %.2f)",
				w.Name, ls.HCSD.Resp.Mean(), w.MeanInterArrivalMs)
		}
	}
}

// Figure 3: the migration cuts storage power by about an order of
// magnitude, and idle power dominates the MD bars.
func TestLimitStudyFigure3Power(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, w := range []trace.WorkloadSpec{trace.Financial(), trace.TPCH()} {
		ls, err := LimitStudy(w, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		ratio := ls.MD.Power.Total() / ls.HCSD.Power.Total()
		if ratio < 3 {
			t.Errorf("%s: MD/HC-SD power ratio %.1f, want large", w.Name, ratio)
		}
		idleShare := ls.MD.Power.Watts[power.Idle] / ls.MD.Power.Total()
		if idleShare < 0.5 {
			t.Errorf("%s: MD idle share %.2f, want dominant", w.Name, idleShare)
		}
	}
}

// Figure 4: rotational latency is the primary bottleneck — scaling R
// helps more than scaling S at the CDF body.
func TestBottleneckFigure4RotationalPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, w := range []trace.WorkloadSpec{trace.Financial(), trace.Websearch()} {
		b, err := Bottleneck(w, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		byLabel := map[string]*Run{}
		for i := range b.Cases {
			byLabel[b.Cases[i].Label] = &b.Cases[i]
		}
		halfS := byLabel["(1/2)S"].Resp.FractionAtMost(10)
		halfR := byLabel["(1/2)R"].Resp.FractionAtMost(10)
		if halfR <= halfS {
			t.Errorf("%s: (1/2)R %.3f not above (1/2)S %.3f at 10 ms", w.Name, halfR, halfS)
		}
	}
}

// Figure 5: more actuators shift the response CDF up and shorten the
// rotational-latency tail, with diminishing returns.
func TestMultiActuatorFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ma, err := MultiActuator(trace.Websearch(), testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma.Runs) != 4 {
		t.Fatalf("%d runs", len(ma.Runs))
	}
	at10 := make([]float64, 4)
	rotMean := make([]float64, 4)
	for i, r := range ma.Runs {
		at10[i] = r.Resp.FractionAtMost(10)
		rotMean[i] = r.RotLat.Mean()
	}
	if !(at10[1] > at10[0] && at10[3] > at10[1]) {
		t.Errorf("CDF@10 not improving with arms: %v", at10)
	}
	if !(rotMean[1] < rotMean[0] && rotMean[3] < rotMean[1]) {
		t.Errorf("mean rotational latency not dropping with arms: %v", rotMean)
	}
	// SA(2) roughly matches MD for Websearch (the paper's claim).
	md10 := ma.MD.Resp.FractionAtMost(10)
	if at10[1] < md10-0.20 {
		t.Errorf("SA(2) at 10 ms %.3f far below MD %.3f", at10[1], md10)
	}
}

// Figures 6-7: lower-RPM multi-actuator designs cut power while several
// still perform acceptably.
func TestReducedRPMFigure6And7(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	rr, err := ReducedRPM(trace.TPCC(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	arms, rpms := ReducedRPMPoints()
	if len(rr.Runs) != len(arms)*len(rpms) {
		t.Fatalf("%d runs", len(rr.Runs))
	}
	find := func(label string) *Run {
		for i := range rr.Runs {
			if rr.Runs[i].Label == label {
				return &rr.Runs[i]
			}
		}
		t.Fatalf("run %q missing (have %v)", label, func() []string {
			var names []string
			for _, r := range rr.Runs {
				names = append(names, r.Label)
			}
			return names
		}())
		return nil
	}
	p72 := find("HC-SD-SA(4)")
	p42 := find("SA(4)/4200")
	if p42.Power.Total() >= p72.Power.Total() {
		t.Errorf("4200 RPM power %.1f not below 7200 RPM %.1f",
			p42.Power.Total(), p72.Power.Total())
	}
	if p42.Resp.FractionAtMost(20) >= p72.Resp.FractionAtMost(20) {
		t.Errorf("4200 RPM performance not below 7200 RPM")
	}
	// The 4200 RPM 4-actuator point still beats the plain HC-SD.
	if p42.Resp.FractionAtMost(20) <= rr.HCSD.Resp.FractionAtMost(20) {
		t.Errorf("SA(4)/4200 (%.3f) not above HC-SD (%.3f) at 20 ms",
			p42.Resp.FractionAtMost(20), rr.HCSD.Resp.FractionAtMost(20))
	}
}

// Figure 8: intra-disk parallel arrays need fewer disks and less power.
func TestRAIDStudyFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := Config{Requests: 12000, Seed: 1}
	rs, err := RunRAIDStudy(cfg, RAIDStudyOpts{
		DiskCounts: []int{2, 4, 8}, Families: []int{1, 4},
		Intensities: []workload.Intensity{workload.Moderate},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{2, 4, 8} {
		conv, ok1 := rs.Point(workload.Moderate, 1, count)
		sa4, ok2 := rs.Point(workload.Moderate, 4, count)
		if !ok1 || !ok2 {
			t.Fatalf("missing points for count %d", count)
		}
		if sa4.P90 >= conv.P90 {
			t.Errorf("%d disks: SA(4) p90 %.2f not below conventional %.2f",
				count, sa4.P90, conv.P90)
		}
	}
	// More disks always help within a family.
	p2, _ := rs.Point(workload.Moderate, 1, 2)
	p8, _ := rs.Point(workload.Moderate, 1, 8)
	if p8.P90 >= p2.P90 {
		t.Errorf("8-disk conventional p90 %.2f not below 2-disk %.2f", p8.P90, p2.P90)
	}
	be := rs.IsoPerformance()
	if len(be) != 1 {
		t.Fatalf("IsoPerformance groups: %d", len(be))
	}
	var convBE, sa4BE *BreakEvenConfig
	for i := range be[0].Configs {
		c := &be[0].Configs[i]
		if c.Actuators == 1 {
			convBE = c
		}
		if c.Actuators == 4 {
			sa4BE = c
		}
	}
	if convBE == nil || sa4BE == nil {
		t.Fatalf("break-even configs missing: %+v", be[0].Configs)
	}
	if sa4BE.Drives > convBE.Drives {
		t.Errorf("SA(4) break-even at %d disks, conventional at %d", sa4BE.Drives, convBE.Drives)
	}
	if sa4BE.PowerW >= convBE.PowerW {
		t.Errorf("SA(4) break-even power %.1f not below conventional %.1f",
			sa4BE.PowerW, convBE.PowerW)
	}
}

func TestReplayCountsEveryRequest(t *testing.T) {
	w := trace.TPCH().WithRequests(500)
	ls, err := LimitStudy(w, Config{Requests: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ls.MD.Resp.Count() != 500 || ls.HCSD.Resp.Count() != 500 {
		t.Fatalf("responses: MD %d, HC-SD %d, want 500",
			ls.MD.Resp.Count(), ls.HCSD.Resp.Count())
	}
}

func TestFigure4CasesComplete(t *testing.T) {
	cases := Figure4Cases()
	want := []string{"(1/2)S", "(1/4)S", "S=0", "(1/2)R", "(1/4)R", "R=0"}
	if len(cases) != len(want) {
		t.Fatalf("%d cases", len(cases))
	}
	for i, c := range cases {
		if c.Label != want[i] {
			t.Fatalf("case %d = %q, want %q", i, c.Label, want[i])
		}
	}
}

func TestFormatters(t *testing.T) {
	ls, err := LimitStudy(trace.TPCH().WithRequests(300), Config{Requests: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteCDFTable(&buf, "title", []Run{ls.MD, ls.HCSD})
	if !strings.Contains(buf.String(), "title") || !strings.Contains(buf.String(), "MD") {
		t.Fatalf("CDF table output: %q", buf.String())
	}
	buf.Reset()
	WritePowerTable(&buf, "power", []Run{ls.MD})
	if !strings.Contains(buf.String(), "rotlat") {
		t.Fatalf("power table output: %q", buf.String())
	}
	buf.Reset()
	WriteTable1(&buf)
	out := buf.String()
	if !strings.Contains(out, "IBM 3380 AK4") || !strings.Contains(out, "modeled") {
		t.Fatalf("Table 1 output: %q", out)
	}
	buf.Reset()
	WriteSummaryTable(&buf, "sum", []Run{ls.MD})
	if !strings.Contains(buf.String(), "power=") {
		t.Fatalf("summary output: %q", buf.String())
	}
	if s := WriteBreakdownBar(ls.MD.Power); !strings.Contains(s, "total=") {
		t.Fatalf("breakdown bar: %q", s)
	}
}

func TestMDSystemOffsetsMonotone(t *testing.T) {
	w := trace.Websearch()
	engine, err := LimitStudy(w.WithRequests(200), Config{Requests: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = engine
	// Offsets come from a fresh MD system.
	md, err := NewMDSystem(newEngine(), w, obs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	offsets := md.Offsets()
	if len(offsets) != w.Disks {
		t.Fatalf("%d offsets for %d disks", len(offsets), w.Disks)
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] <= offsets[i-1] {
			t.Fatalf("offsets not increasing: %v", offsets)
		}
	}
}

// newEngine is a tiny test helper (keeps the experiments API surface
// engine-free for callers that only build systems).
func newEngine() *simkit.Engine { return simkit.New() }
