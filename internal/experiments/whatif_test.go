package experiments

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/fleet"
)

// whatIfTestQuery is a small but non-trivial query: a faulted SA(2)
// under 1.5× Financial load, replicated twice.
func whatIfTestQuery() WhatIfQuery {
	return WhatIfQuery{
		Workload:     "Financial",
		Actuators:    2,
		ArrivalScale: 1.5,
		Requests:     4000,
		Seed:         7,
		Reps:         2,
		ArmFaults:    []WhatIfArmFault{{AtFrac: 0.3, Arm: 1}},
	}
}

// whatIfFingerprint renders everything a cached answer would serialize,
// so byte-identity of the fingerprint pins byte-identity of the answer.
func whatIfFingerprint(runs []*WhatIfRun) string {
	s := ""
	for _, r := range runs {
		s += fmt.Sprintf("%s %v %d %.9f %.9f %d/%d %d/%d\n",
			r.Label, r.Resp.Summarize(), r.Completed, r.Power.Total(), r.ElapsedMs,
			r.HealthyArms, r.TotalArms, r.FaultsInjected, r.FaultsRefused)
	}
	return s
}

func runWhatIfJobs(t *testing.T, q WhatIfQuery, parallelism int) []*WhatIfRun {
	t.Helper()
	runs, err := fleet.Run(WhatIfJobs(q, Observe{}), fleet.Options{
		Parallelism: parallelism,
		BaseSeed:    q.Seed,
	})
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}
	return runs
}

// TestWhatIfDeterministic pins the serving layer's soundness argument:
// the same query yields a byte-identical answer on repeated runs and at
// any parallelism.
func TestWhatIfDeterministic(t *testing.T) {
	q := whatIfTestQuery()
	a := whatIfFingerprint(runWhatIfJobs(t, q, 1))
	b := whatIfFingerprint(runWhatIfJobs(t, q, 1))
	c := whatIfFingerprint(runWhatIfJobs(t, q, 4))
	if a != b {
		t.Errorf("repeated runs differ:\n%s\nvs\n%s", a, b)
	}
	if a != c {
		t.Errorf("parallelism 1 vs 4 differ:\n%s\nvs\n%s", a, c)
	}
	if a == "" {
		t.Fatal("empty fingerprint")
	}
}

// TestWhatIfArmFaultApplied checks the fault actually lands: the drive
// ends the run with one deconfigured actuator.
func TestWhatIfArmFaultApplied(t *testing.T) {
	r, err := RunWhatIf(context.Background(), whatIfTestQuery(), 7, Observe{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalArms != 2 || r.HealthyArms != 1 {
		t.Errorf("arms = %d/%d, want 1/2", r.HealthyArms, r.TotalArms)
	}
	if r.FaultsInjected != 1 {
		t.Errorf("FaultsInjected = %d, want 1", r.FaultsInjected)
	}
	if r.Completed != 4000 {
		t.Errorf("Completed = %d, want 4000", r.Completed)
	}
}

// TestWhatIfValidate covers the rejection paths a serving layer relies
// on to 400 malformed queries instead of running them.
func TestWhatIfValidate(t *testing.T) {
	bad := []WhatIfQuery{
		{Workload: "nope"},
		{Workload: "Financial", Actuators: 9},
		{Workload: "Financial", RPM: 9999},
		{Workload: "Financial", ArrivalScale: 100},
		{Workload: "Financial", Reps: 65},
		{Workload: "Financial", ArmFaults: []WhatIfArmFault{{AtFrac: 2, Arm: 0}}},
		{Workload: "Financial", ArmFaults: []WhatIfArmFault{{AtFrac: 0.5, Arm: 3}}},
	}
	for _, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", q)
		}
	}
	if err := whatIfTestQuery().Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
}

// cancelAfterCtx is a deterministic mid-run cancellation: it reports
// itself canceled starting from the n-th Err poll, with no goroutines
// or wall-clock involved. The replay polls Err once per arrival batch,
// so the n-th poll is the n-th batch boundary.
type cancelAfterCtx struct {
	context.Context
	n     int
	polls int
}

func (c *cancelAfterCtx) Err() error {
	c.polls++
	if c.polls >= c.n {
		return context.Canceled
	}
	return nil
}

// TestWhatIfCancelStopsWithinBatch pins the promptness contract: a
// canceled job schedules no arrivals past the batch in which it
// observed the cancellation, and returns the context error instead of
// a partial result.
func TestWhatIfCancelStopsWithinBatch(t *testing.T) {
	q := whatIfTestQuery()
	q.Reps = 1
	q.ArmFaults = nil
	q.Requests = 20000

	ctx := &cancelAfterCtx{Context: context.Background(), n: 3}
	r, err := RunWhatIf(ctx, q, 7, Observe{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r != nil {
		t.Fatalf("canceled run returned a partial result: %+v", r)
	}
	// The third poll happens on arrival 3*whatIfCancelBatch; nothing
	// beyond that batch may have been scheduled.
	if got, limit := ctx.polls, 3; got != limit {
		t.Errorf("ctx polled %d times, want exactly %d (stop within one batch)", got, limit)
	}
}
