package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sched"
	"repro/internal/simkit"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Ablations isolate the design choices the reproduction depends on:
// the disk scheduler, the on-board cache size (the paper's §7.1 "64 MB
// changes nothing" check), the relaxed parallel designs from the
// technical report, and the diagonal angular mounting of the arm
// assemblies (which this implementation found to be the load-bearing
// mechanism behind the rotational-latency reduction).

// prepHCSDStream validates the config and synthesizes the workload's
// HC-SD request stream. Each run of an ablation calls it afresh: the
// same (spec, cfg) always yields the identical stream, so every case
// replays the same requests without any case holding a full trace.
func prepHCSDStream(spec trace.WorkloadSpec, cfg Config) (trace.Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return hcsdStream(spec, cfg)
}

// runHCSD replays a prepared stream on an HC-SD built with opts.
func runHCSD(label string, s trace.Stream, model disk.Model, opts disk.Options) (*Run, error) {
	eng := simkit.New()
	d, err := disk.New(eng, model, opts)
	if err != nil {
		return nil, err
	}
	resp, err := ReplayStream(eng, d, s)
	if err != nil {
		return nil, err
	}
	return &Run{
		Label:     label,
		Resp:      resp,
		RotLat:    &stats.Sample{},
		Power:     d.Power(eng.Now()),
		ElapsedMs: eng.Now(),
		Completed: uint64(resp.Count()),
	}, nil
}

// SchedulerAblation runs the HC-SD under FCFS, SSTF, C-LOOK and SPTF.
// The paper uses SPTF (§7.2); this quantifies how much that choice buys.
func SchedulerAblation(spec trace.WorkloadSpec, cfg Config) ([]Run, error) {
	var out []Run
	for _, p := range []sched.Policy{sched.FCFS, sched.SSTF, sched.CLOOK, sched.SPTF} {
		s, err := prepHCSDStream(spec, cfg)
		if err != nil {
			return nil, err
		}
		scfg := disk.DefaultSchedConfig()
		scfg.Policy = p
		r, err := runHCSD(p.String(), s, disk.BarracudaES(), disk.Options{Sched: &scfg})
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

// CacheAblation reruns the HC-SD with its stock 8 MB buffer and with the
// paper's 64 MB what-if (§7.1 found the larger cache changes little for
// the random-I/O workloads).
func CacheAblation(spec trace.WorkloadSpec, cfg Config) ([]Run, error) {
	var out []Run
	for _, mb := range []int64{8, 64} {
		s, err := prepHCSDStream(spec, cfg)
		if err != nil {
			return nil, err
		}
		model := disk.BarracudaES()
		model.CacheBytes = mb << 20
		r, err := runHCSD(fmt.Sprintf("%dMB cache", mb), s, model, disk.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

// RelaxedDesignAblation compares the paper's base HC-SD-SA(n) against
// the two relaxed designs of the technical report: multiple arms in
// motion, and multiple concurrent data channels.
func RelaxedDesignAblation(spec trace.WorkloadSpec, cfg Config, actuators int) ([]Run, error) {
	cases := []struct {
		label string
		ccfg  core.Config
	}{
		{fmt.Sprintf("SA(%d) base", actuators), core.Config{Actuators: actuators}},
		{fmt.Sprintf("SA(%d)+multi-arm", actuators), core.Config{Actuators: actuators, MultiArmMotion: true}},
		{fmt.Sprintf("SA(%d)+%d-channel", actuators, actuators), core.Config{Actuators: actuators, Channels: actuators}},
	}
	var out []Run
	for _, c := range cases {
		s, err := prepHCSDStream(spec, cfg)
		if err != nil {
			return nil, err
		}
		r, err := runSA(c.label, s, c.ccfg)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

// PlacementAblation compares the diagonal (evenly spread) angular
// mounting of the arm assemblies against co-located mounting (all arms
// at the same angular position). With co-located arms a longer seek is
// exactly repaid by a shorter rotational wait, so extra actuators buy
// almost nothing — the spread mounting is what shortens rotational
// latency (the paper's Figure 1 draws the assemblies diagonally).
func PlacementAblation(spec trace.WorkloadSpec, cfg Config, actuators int) (spread, colocated Run, err error) {
	ds, err := prepHCSDStream(spec, cfg)
	if err != nil {
		return Run{}, Run{}, err
	}
	s, err := runSA(fmt.Sprintf("SA(%d) diagonal", actuators), ds, core.Config{Actuators: actuators})
	if err != nil {
		return Run{}, Run{}, err
	}
	cs, err := prepHCSDStream(spec, cfg)
	if err != nil {
		return Run{}, Run{}, err
	}
	zero := make([]float64, actuators)
	c, err := runSA(fmt.Sprintf("SA(%d) co-located", actuators), cs, core.Config{
		Actuators:      actuators,
		AngularOffsets: zero,
	})
	if err != nil {
		return Run{}, Run{}, err
	}
	return *s, *c, nil
}

// runSA replays a prepared stream on a parallel drive built with ccfg.
func runSA(label string, in trace.Stream, ccfg core.Config) (*Run, error) {
	eng := simkit.New()
	rot := &stats.Sample{}
	prev := ccfg.OnService
	ccfg.OnService = func(s, r, x float64) {
		rot.Add(r)
		if prev != nil {
			prev(s, r, x)
		}
	}
	d, err := core.New(eng, disk.BarracudaES(), ccfg)
	if err != nil {
		return nil, err
	}
	resp, err := ReplayStream(eng, d, in)
	if err != nil {
		return nil, err
	}
	return &Run{
		Label:     label,
		Resp:      resp,
		RotLat:    rot,
		Power:     d.Power(eng.Now()),
		ElapsedMs: eng.Now(),
		Completed: uint64(resp.Count()),
	}, nil
}
