package experiments

import (
	"testing"

	"repro/internal/trace"
)

func TestSchedulerAblationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	runs, err := SchedulerAblation(trace.Websearch(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("%d runs", len(runs))
	}
	means := map[string]float64{}
	for _, r := range runs {
		means[r.Label] = r.Resp.Mean()
	}
	// SPTF (the paper's policy) should beat FCFS, and position-aware
	// policies generally beat FCFS.
	if means["SPTF"] >= means["FCFS"] {
		t.Errorf("SPTF mean %.2f not below FCFS %.2f", means["SPTF"], means["FCFS"])
	}
	if means["SSTF"] >= means["FCFS"] {
		t.Errorf("SSTF mean %.2f not below FCFS %.2f", means["SSTF"], means["FCFS"])
	}
}

func TestCacheAblationNegligible(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// §7.1: for the random-I/O workloads an 8x larger cache changes
	// little, because the footprints dwarf any plausible buffer.
	runs, err := CacheAblation(trace.Websearch(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := runs[0].Resp.Mean()
	large := runs[1].Resp.Mean()
	if rel := (small - large) / small; rel > 0.15 {
		t.Errorf("64MB cache improved mean response by %.0f%%, paper says negligible", rel*100)
	}
}

func TestRelaxedDesignAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	runs, err := RelaxedDesignAblation(trace.TPCC(), testConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("%d runs", len(runs))
	}
	base := runs[0].Resp.Mean()
	multiArm := runs[1].Resp.Mean()
	multiChan := runs[2].Resp.Mean()
	// The paper's technical report: the relaxations provide little
	// benefit over the base design. Multi-channel can help under load,
	// but neither should be dramatically worse than base.
	if multiArm > base*1.15 {
		t.Errorf("multi-arm motion regressed: %.2f vs base %.2f", multiArm, base)
	}
	if multiChan > base*1.15 {
		t.Errorf("multi-channel regressed: %.2f vs base %.2f", multiChan, base)
	}
	// And all three must complete the full workload.
	for _, r := range runs {
		if int(r.Completed) != testConfig().Requests {
			t.Errorf("%s completed %d of %d", r.Label, r.Completed, testConfig().Requests)
		}
	}
}

func TestPlacementAblationDiagonalWins(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	spread, colocated, err := PlacementAblation(trace.Websearch(), testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal mounting must cut mean rotational latency well below the
	// co-located configuration — it is the mechanism behind Figure 5.
	if spread.RotLat.Mean() >= colocated.RotLat.Mean()*0.85 {
		t.Errorf("diagonal rot latency %.2f not well below co-located %.2f",
			spread.RotLat.Mean(), colocated.RotLat.Mean())
	}
	if spread.Resp.Mean() >= colocated.Resp.Mean() {
		t.Errorf("diagonal mean response %.2f not below co-located %.2f",
			spread.Resp.Mean(), colocated.Resp.Mean())
	}
}
