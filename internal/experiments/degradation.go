package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/defect"
	"repro/internal/device"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/simkit"
	"repro/internal/simkit/par"
	"repro/internal/smart"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Degradation-study scenario constants. The timeline is expressed as
// fractions of the workload's nominal duration (mean inter-arrival ×
// request count), so scenarios scale with -requests while the fault
// plan stays a pure function of (spec, seed).
const (
	degradationArms = 4 // the DASH configuration under test: HC-SD-SA(4)

	// RAID-5 rebuild scenario: a 4-member array of HC-SD drives sized
	// to hold the workload's HC-SD address space.
	degradationMembers      = 4
	degradationDeadMember   = 2
	degradationDefectMember = 0
	degradationSectorErrors = 64
	degradationSpareSectors = 4096
	// The rebuild sweeps the member extent in a fixed number of chunks,
	// so the simulated event count is independent of the drive size.
	degradationRebuildChunks = 256

	// Timeline fractions of the nominal duration.
	degradationErrorStartFrac = 0.05
	degradationDriftFrac      = 0.25
	degradationArmFrac1       = 0.25
	degradationArmFrac2       = 0.50
	degradationDeathFrac      = 0.35
	degradationRebuildFrac    = 0.45

	// SMART scenario: the sentry polls 64 times over the run; the
	// indicted arm's seek-error rate drifts from its ~0.002 baseline to
	// the 0.05 trip threshold in roughly 15 polls, so the
	// deconfiguration lands near mid-run at any request count.
	degradationSentryPolls = 64
	degradationDriftRate   = 0.004
	degradationDriftArm    = 2
)

// DefaultDegradationDepths returns the rebuild queue depths the study
// sweeps: serialized, moderately and deeply overlapped chunk pipelines.
func DefaultDegradationDepths() []int { return []int{1, 4, 16} }

// DegradationRun is one scenario's measurement: the usual run sample
// plus the degradation-specific quantities (surviving actuators, grown
// defects, rebuild progress).
type DegradationRun struct {
	Run

	// HealthyArms/TotalArms report the DASH drive's actuator state at
	// the end of the run (TotalArms 0 for the array scenarios).
	HealthyArms int
	TotalArms   int

	// RebuildDepth is the rebuild scenario's chunk pipeline depth
	// (0 for the DASH scenarios).
	RebuildDepth int
	// Reallocated counts the grown defects injected into the surviving
	// member's defect table.
	Reallocated uint64
	// CopiedSectors and RebuildDoneMs report the rebuild sweep: the
	// sectors restored onto the replacement and the simulated time the
	// member returned to service (0 when no rebuild ran or finished).
	CopiedSectors int64
	RebuildDoneMs float64
	// Injected counts successfully applied fault-plan events.
	Injected uint64
}

// DegradationResult holds one workload's §8 study: scenarios in
// presentation order (healthy, SMART-driven deconfiguration, direct
// double arm fault, then member-death + rebuild per depth).
type DegradationResult struct {
	Workload string
	Runs     []DegradationRun
}

// hcsdTotalSectors reports the size of the workload's HC-SD address
// space: the sum of the original array members' capacities (the
// migration of §7.1 populates the high-capacity drive in disk order).
func hcsdTotalSectors(spec trace.WorkloadSpec) (int64, error) {
	model, err := MDDriveModel(spec)
	if err != nil {
		return 0, err
	}
	eng := simkit.New() // throwaway: only the geometry capacity is needed
	probe, err := disk.New(eng, model, disk.Options{})
	if err != nil {
		return 0, err
	}
	return probe.Capacity() * int64(spec.Disks), nil
}

// degradationRun assembles the common measurement of one scenario.
func degradationRun(label string, dev device.Device, resp *stats.Sample,
	eng simkit.Scheduler, sink *obs.MemorySink, inj *fault.Injector, ob Observe) DegradationRun {
	r := DegradationRun{Run: Run{
		Label:     label,
		Resp:      resp,
		RotLat:    &stats.Sample{},
		Power:     dev.Power(eng.Now()),
		ElapsedMs: eng.Now(),
		Completed: uint64(resp.Count()),
		Events:    ob.events(sink),
	}}
	if inj != nil {
		r.CopiedSectors = inj.CopiedSectors()
		r.RebuildDoneMs = inj.RebuildDoneMs()
		r.Injected = inj.Injected()
	}
	if ob.Metrics {
		if in, ok := dev.(device.Instrumented); ok {
			snap := in.Snapshot()
			if inj != nil {
				snap.Children = append(snap.Children, inj.Snapshot())
			}
			r.Snap = &snap
		}
	}
	return r
}

// DegradationStudy runs the paper's §8 graceful-degradation scenarios
// for one workload, fanned out through the fleet:
//
//   - healthy: the HC-SD-SA(4) baseline.
//   - smart-deconfig: one arm's seek-error rate drifts (a compiled
//     fault-plan onset); the SMART sentry predicts the failure and
//     deconfigures the arm mid-run — the full cause→effect loop.
//   - arm-fault-x2: two arms deconfigured directly at planned times,
//     the worst surviving DASH configuration.
//   - rebuild(d=N): a RAID-5 of four HC-SD drives serving the same
//     stream; one member accumulates latent sector errors, another dies
//     and is rebuilt under foreground load at chunk depth N.
//   - rebuild-lp(d=N): the same fault scenario on the partitioned
//     topology — controller and members on separate logical processes,
//     rebuild traffic crossing the member links. LPParallel only turns
//     the worker pool on; the output is byte-identical either way.
//
// Every scenario derives all randomness from cfg.Seed, so the study is
// byte-identical at any Parallelism.
func DegradationStudy(spec trace.WorkloadSpec, cfg Config) (*DegradationResult, error) {
	return RunDegradationStudy(spec, cfg, DefaultDegradationDepths())
}

// RunDegradationStudy is DegradationStudy with an explicit rebuild
// depth sweep.
func RunDegradationStudy(spec trace.WorkloadSpec, cfg Config, depths []int) (*DegradationResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.WithRequests(cfg.Requests).Validate(); err != nil {
		return nil, err
	}
	durationMs := spec.MeanInterArrivalMs * float64(cfg.Requests)
	total, err := hcsdTotalSectors(spec)
	if err != nil {
		return nil, err
	}
	// Size the RAID-5 members so the (members-1)-wide data capacity
	// covers the HC-SD address space, extents aligned to the stripe
	// unit.
	per := (total + int64(degradationMembers-1) - 1) / int64(degradationMembers-1)
	per = (per + StripeUnitSectors - 1) / StripeUnitSectors * StripeUnitSectors
	chunk := (per + degradationRebuildChunks - 1) / degradationRebuildChunks

	jobs := []fleet.Job[DegradationRun]{
		{Name: spec.Name + "/degradation/healthy", Run: func(context.Context, int64) (DegradationRun, error) {
			eng := jobEngine(cfg.LPParallel)
			sink := cfg.Observe.sink()
			d, err := core.New(eng, disk.BarracudaES(), core.Config{
				Actuators: degradationArms, Obs: sinkOptions(sink, "healthy"),
			})
			if err != nil {
				return DegradationRun{}, err
			}
			s, err := hcsdStream(spec, cfg)
			if err != nil {
				return DegradationRun{}, err
			}
			resp, err := ReplayStream(eng, d, s)
			if err != nil {
				return DegradationRun{}, err
			}
			r := degradationRun("healthy", d, resp, eng, sink, nil, cfg.Observe)
			r.HealthyArms, r.TotalArms = d.HealthyArms(), degradationArms
			return r, nil
		}},
		{Name: spec.Name + "/degradation/smart", Run: func(context.Context, int64) (DegradationRun, error) {
			eng := jobEngine(cfg.LPParallel)
			sink := cfg.Observe.sink()
			d, err := core.New(eng, disk.BarracudaES(), core.Config{
				Actuators: degradationArms, Obs: sinkOptions(sink, "smart-deconfig"),
			})
			if err != nil {
				return DegradationRun{}, err
			}
			monitors := make([]*smart.Monitor, degradationArms)
			for i := range monitors {
				monitors[i] = smart.NewMonitor(cfg.Seed+int64(100+i), nil)
			}
			plan, err := fault.Compile(fault.Spec{Drifts: []fault.Drift{{
				AtMs:      degradationDriftFrac * durationMs,
				Component: degradationDriftArm,
				Attr:      smart.SeekErrorRate,
				Rate:      degradationDriftRate,
			}}}, cfg.Seed)
			if err != nil {
				return DegradationRun{}, err
			}
			inj, err := fault.NewInjector(eng, plan, fault.Targets{Monitors: monitors},
				sinkOptions(sink, "smart-deconfig/fault"))
			if err != nil {
				return DegradationRun{}, err
			}
			inj.Schedule()
			sentry, err := smart.NewSentry(eng, monitors, durationMs/degradationSentryPolls,
				func(i int) {
					if err := d.FailArm(i); err == nil {
						inj.React(i)
					}
				})
			if err != nil {
				return DegradationRun{}, err
			}
			sentry.Start(durationMs)
			s, err := hcsdStream(spec, cfg)
			if err != nil {
				return DegradationRun{}, err
			}
			resp, err := ReplayStream(eng, d, s)
			if err != nil {
				return DegradationRun{}, err
			}
			r := degradationRun("smart-deconfig", d, resp, eng, sink, inj, cfg.Observe)
			r.HealthyArms, r.TotalArms = d.HealthyArms(), degradationArms
			return r, nil
		}},
		{Name: spec.Name + "/degradation/arm-fault-x2", Run: func(context.Context, int64) (DegradationRun, error) {
			eng := jobEngine(cfg.LPParallel)
			sink := cfg.Observe.sink()
			d, err := core.New(eng, disk.BarracudaES(), core.Config{
				Actuators: degradationArms, Obs: sinkOptions(sink, "arm-fault-x2"),
			})
			if err != nil {
				return DegradationRun{}, err
			}
			plan, err := fault.Compile(fault.Spec{ArmFaults: []fault.ArmFault{
				{AtMs: degradationArmFrac1 * durationMs, Arm: 1},
				{AtMs: degradationArmFrac2 * durationMs, Arm: 3},
			}}, cfg.Seed)
			if err != nil {
				return DegradationRun{}, err
			}
			inj, err := fault.NewInjector(eng, plan, fault.Targets{Arms: d},
				sinkOptions(sink, "arm-fault-x2/fault"))
			if err != nil {
				return DegradationRun{}, err
			}
			inj.Schedule()
			s, err := hcsdStream(spec, cfg)
			if err != nil {
				return DegradationRun{}, err
			}
			resp, err := ReplayStream(eng, d, s)
			if err != nil {
				return DegradationRun{}, err
			}
			r := degradationRun("arm-fault-x2", d, resp, eng, sink, inj, cfg.Observe)
			r.HealthyArms, r.TotalArms = d.HealthyArms(), degradationArms
			return r, nil
		}},
	}
	for _, depth := range depths {
		depth := depth
		label := fmt.Sprintf("rebuild(d=%d)", depth)
		jobs = append(jobs, fleet.Job[DegradationRun]{
			Name: fmt.Sprintf("%s/degradation/%s", spec.Name, label),
			Run: func(context.Context, int64) (DegradationRun, error) {
				eng := jobEngine(cfg.LPParallel)
				sink := cfg.Observe.sink()
				dt, err := defect.NewTable(per+degradationSpareSectors, degradationSpareSectors)
				if err != nil {
					return DegradationRun{}, err
				}
				members := make([]device.Device, degradationMembers)
				for i := range members {
					opts := disk.Options{Obs: sinkOptions(sink, fmt.Sprintf("%s/m%d", label, i))}
					if i == degradationDefectMember {
						opts.Defects = dt
					}
					d, err := disk.New(eng, disk.BarracudaES(), opts)
					if err != nil {
						return DegradationRun{}, err
					}
					members[i] = d
				}
				layout, err := raid.NewRAID5(degradationMembers, per, StripeUnitSectors)
				if err != nil {
					return DegradationRun{}, err
				}
				arr, err := raid.NewArray(layout, members)
				if err != nil {
					return DegradationRun{}, err
				}
				deathMs := degradationDeathFrac * durationMs
				plan, err := fault.Compile(fault.Spec{
					SectorErrors: fault.SectorErrors{
						Count:       degradationSectorErrors,
						StartMs:     degradationErrorStartFrac * durationMs,
						EndMs:       deathMs,
						UserSectors: per,
					},
					Death: &fault.Death{
						AtMs:         deathMs,
						Member:       degradationDeadMember,
						RebuildAtMs:  degradationRebuildFrac * durationMs,
						ChunkSectors: chunk,
						Depth:        depth,
					},
				}, cfg.Seed)
				if err != nil {
					return DegradationRun{}, err
				}
				inj, err := fault.NewInjector(eng, plan, fault.Targets{Defects: dt, Array: arr},
					sinkOptions(sink, label+"/fault"))
				if err != nil {
					return DegradationRun{}, err
				}
				inj.Schedule()
				s, err := hcsdStream(spec, cfg)
				if err != nil {
					return DegradationRun{}, err
				}
				resp, err := ReplayStream(eng, arr, s)
				if err != nil {
					return DegradationRun{}, err
				}
				r := degradationRun(label, arr, resp, eng, sink, inj, cfg.Observe)
				r.RebuildDepth = depth
				r.Reallocated = dt.Reallocated()
				return r, nil
			},
		})
	}
	// The same rebuild scenarios on the genuinely partitioned topology:
	// controller and members on separate LPs, sector errors applied on
	// the defect-table member's own LP, death and rebuild injected on
	// the controller's. LPParallel turns the worker pool on; results
	// are byte-identical either way, so the study output diffs clean
	// against a flag-off run.
	for _, depth := range depths {
		depth := depth
		label := fmt.Sprintf("rebuild-lp(d=%d)", depth)
		jobs = append(jobs, fleet.Job[DegradationRun]{
			Name: fmt.Sprintf("%s/degradation/%s", spec.Name, label),
			Run: func(context.Context, int64) (DegradationRun, error) {
				workers := 1
				if cfg.LPParallel {
					workers = 0 // all cores
				}
				pe := par.New(degradationMembers+1, par.Options{Workers: workers})
				sink := cfg.Observe.sink()
				dt, err := defect.NewTable(per+degradationSpareSectors, degradationSpareSectors)
				if err != nil {
					return DegradationRun{}, err
				}
				layout, err := raid.NewRAID5(degradationMembers, per, StripeUnitSectors)
				if err != nil {
					return DegradationRun{}, err
				}
				model := disk.BarracudaES()
				arr, err := raid.NewPartitioned(pe, layout, bus.DefaultLink(), int64(model.Geom.SectorBytes),
					func(s simkit.Scheduler, i int) (device.Device, error) {
						opts := disk.Options{Obs: lpSinkOptions(pe.LP(1+i), sink, fmt.Sprintf("%s/m%d", label, i))}
						if i == degradationDefectMember {
							opts.Defects = dt
						}
						return disk.New(s, model, opts)
					})
				if err != nil {
					return DegradationRun{}, err
				}
				deathMs := degradationDeathFrac * durationMs
				plan, err := fault.Compile(fault.Spec{
					SectorErrors: fault.SectorErrors{
						Count:       degradationSectorErrors,
						StartMs:     degradationErrorStartFrac * durationMs,
						EndMs:       deathMs,
						UserSectors: per,
					},
					Death: &fault.Death{
						AtMs:         deathMs,
						Member:       degradationDeadMember,
						RebuildAtMs:  degradationRebuildFrac * durationMs,
						ChunkSectors: chunk,
						Depth:        depth,
					},
				}, cfg.Seed)
				if err != nil {
					return DegradationRun{}, err
				}
				defectLP := pe.LP(1 + degradationDefectMember)
				inj, err := fault.NewInjector(pe.LP(0), plan, fault.Targets{
					Defects:     dt,
					DefectsOn:   defectLP,
					DefectsSink: lpWrap(defectLP, sink),
					Array:       arr,
				}, lpSinkOptions(pe.LP(0), sink, label+"/fault"))
				if err != nil {
					return DegradationRun{}, err
				}
				inj.Schedule()
				s, err := hcsdStream(spec, cfg)
				if err != nil {
					return DegradationRun{}, err
				}
				runner := pe.Runner(0)
				resp, err := ReplayStream(runner, arr, s)
				if err != nil {
					return DegradationRun{}, err
				}
				r := degradationRun(label, arr, resp, runner, sink, inj, cfg.Observe)
				r.RebuildDepth = depth
				r.Reallocated = dt.Reallocated()
				return r, nil
			},
		})
	}
	runs, err := fleet.Run(jobs, cfg.fleetOptions())
	if err != nil {
		return nil, err
	}
	return &DegradationResult{Workload: spec.Name, Runs: runs}, nil
}

// WriteDegradationTable renders the §8 study: per-scenario response
// statistics next to the degradation state each scenario ended in.
func WriteDegradationTable(w io.Writer, r *DegradationResult) {
	fmt.Fprintf(w, "Degradation study (%s): graceful degradation under injected faults (§8)\n", r.Workload)
	fmt.Fprintf(w, "%-16s %9s %9s %10s %6s %8s %12s %13s\n",
		"scenario", "mean(ms)", "p90(ms)", "completed", "arms", "realloc", "copied", "rebuilt@ms")
	for _, run := range r.Runs {
		arms, realloc, copied, done := "-", "-", "-", "-"
		if run.TotalArms > 0 {
			arms = fmt.Sprintf("%d/%d", run.HealthyArms, run.TotalArms)
		}
		if run.RebuildDepth > 0 {
			realloc = fmt.Sprintf("%d", run.Reallocated)
			copied = fmt.Sprintf("%d", run.CopiedSectors)
			if run.RebuildDoneMs > 0 {
				done = fmt.Sprintf("%.1f", run.RebuildDoneMs)
			}
		}
		fmt.Fprintf(w, "%-16s %9.2f %9.2f %10d %6s %8s %12s %13s\n",
			run.Label, run.Resp.Mean(), run.Resp.Percentile(90), run.Completed,
			arms, realloc, copied, done)
	}
}
