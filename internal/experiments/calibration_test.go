package experiments

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/simkit"
	"repro/internal/trace"
)

const fixtureDir = "../trace/testdata"

func newTestDisk(t *testing.T, eng simkit.Runner) *disk.Drive {
	t.Helper()
	d, err := disk.New(eng, disk.BarracudaES(), disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCalibrationDeterminism pins the issue's acceptance criterion in
// test form: for one vendored fixture per format, the rendered
// calibration table is byte-identical at Parallelism 1 vs 8 and with
// the partitioned engine on vs off.
func TestCalibrationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	fixtures := []string{"sample.spc.csv", "sample.msr.csv", "sample.blkparse.txt"}
	render := func(path string, cfg Config) string {
		res, err := CalibrationStudy(path, cfg)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var buf bytes.Buffer
		WriteCalibrationTable(&buf, res)
		return buf.String()
	}
	for _, fx := range fixtures {
		path := filepath.Join(fixtureDir, fx)
		base := render(path, Config{Seed: 1, Parallelism: 1})
		if base == "" || !strings.Contains(base, "KS distance") {
			t.Fatalf("%s: implausible table:\n%s", fx, base)
		}
		if got := render(path, Config{Seed: 1, Parallelism: 8}); got != base {
			t.Errorf("%s: table differs at Parallelism 8", fx)
		}
		if got := render(path, Config{Seed: 1, Parallelism: 8, LPParallel: true}); got != base {
			t.Errorf("%s: table differs with LPParallel", fx)
		}
	}
}

// TestCalibrationResultShape checks the study's contents on one fixture:
// sniffed format, equal replay load, a fitted spec that validates, and a
// KS distance inside [0, 1].
func TestCalibrationResultShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res, err := CalibrationStudy(filepath.Join(fixtureDir, "sample.spc.csv"), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Format != trace.FormatSPC {
		t.Errorf("format = %q, want spc", res.Format)
	}
	if res.Real.Requests == 0 || res.Synth.Requests != res.Real.Requests {
		t.Errorf("request counts: real %d, synth %d", res.Real.Requests, res.Synth.Requests)
	}
	if err := res.Spec.Validate(); err != nil {
		t.Errorf("fitted spec invalid: %v", err)
	}
	if res.RealRun.Completed != uint64(res.Real.Requests) {
		t.Errorf("real replay completed %d of %d", res.RealRun.Completed, res.Real.Requests)
	}
	if res.SynthRun.Completed != uint64(res.Real.Requests) {
		t.Errorf("synthetic replay completed %d of %d", res.SynthRun.Completed, res.Real.Requests)
	}
	if res.KS < 0 || res.KS > 1 {
		t.Errorf("KS = %v outside [0,1]", res.KS)
	}
}

// TestReplayStreamPropagatesIngestError pins the satellite bugfix at the
// experiments boundary: a stream that fails mid-ingestion must surface
// its error from ReplayStream instead of silently truncating the replay
// (the pre-fix behavior was a panic in RemapStream and silence here).
func TestReplayStreamPropagatesIngestError(t *testing.T) {
	eng := jobEngine(false)
	d := newTestDisk(t, eng)
	in := "0.0 0 0 8 R\nnot a trace line\n"
	rd := trace.NewNativeReader(strings.NewReader(in), trace.ReaderOpts{})
	resp, err := ReplayStream(eng, d, rd)
	if err == nil {
		t.Fatal("ReplayStream returned nil error for a failing stream")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q lacks the offending line", err)
	}
	if resp == nil || resp.Count() != 1 {
		t.Errorf("expected the one good request to have replayed, got %v", resp)
	}
}

// TestReplayStreamUnroutableDisk covers the other half of the same fix:
// a request targeting a disk beyond the remap offset table is an error,
// not a panic.
func TestReplayStreamUnroutableDisk(t *testing.T) {
	eng := jobEngine(false)
	d := newTestDisk(t, eng)
	in := "0.0 0 0 8 R\n0.1 5 0 8 R\n"
	rd := trace.NewNativeReader(strings.NewReader(in), trace.ReaderOpts{})
	_, err := ReplayStream(eng, d, trace.RemapStream(rd, []int64{0, 1 << 20}))
	if err == nil {
		t.Fatal("ReplayStream accepted a request beyond the offset table")
	}
	if !strings.Contains(err.Error(), "disk 5") {
		t.Errorf("error %q does not name the unroutable disk", err)
	}
}
