package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/simkit"
	"repro/internal/stats"
	"repro/internal/trace"
)

// A WhatIfQuery is one parameterized capacity-planning question —
// "P99 latency and watts for SA(4) at 1.8× the Financial arrival rate
// with one arm deconfigured" — in the declarative form the serving
// layer compiles into fleet jobs. Every field participates in the
// content-addressed cache key, so two queries that normalize to the
// same value are the same question and may share one answer.
type WhatIfQuery struct {
	// Workload names one of the paper's Table-2 workloads (Financial,
	// Websearch, TPC-C, TPC-H).
	Workload string `json:"workload"`
	// Actuators is the SA(n) design point under test; 1 is the
	// conventional single-arm HC-SD.
	Actuators int `json:"actuators"`
	// RPM overrides the spindle speed (0 = the stock model's RPM).
	RPM float64 `json:"rpm,omitempty"`
	// ArrivalScale multiplies the workload's arrival rate: 2 doubles
	// the load (halves the mean inter-arrival time). 0 means 1.
	ArrivalScale float64 `json:"arrival_scale,omitempty"`
	// Requests is the replay length per replicate (0 = the default
	// experiment scale).
	Requests int `json:"requests,omitempty"`
	// Seed is the base seed; replicate r runs with
	// fleet.DeriveSeed(Seed, r).
	Seed int64 `json:"seed"`
	// Reps is the replicate count (0 = 1).
	Reps int `json:"reps,omitempty"`
	// ArmFaults deconfigures actuators mid-run: each entry fails Arm at
	// AtFrac of the nominal replay duration (mean inter-arrival ×
	// requests), so fault timing scales with Requests.
	ArmFaults []WhatIfArmFault `json:"arm_faults,omitempty"`
	// LPParallel runs the replicate on the partitioned engine's
	// windowed runtime instead of the sequential engine. The answer is
	// byte-identical either way — the field selects a substrate, not a
	// result — but it participates in the cache key like every other
	// field, so an answer always records how it was computed.
	LPParallel bool `json:"lp_parallel,omitempty"`
}

// WhatIfArmFault is one scheduled actuator deconfiguration.
type WhatIfArmFault struct {
	// AtFrac places the fault at this fraction of the nominal replay
	// duration, in [0, 1].
	AtFrac float64 `json:"at_frac"`
	// Arm is the actuator index to deconfigure.
	Arm int `json:"arm"`
}

// whatIfMaxActuators bounds the design space a query may ask about; it
// matches the largest SA(n) the paper evaluates (Figure 5 stops at 4,
// the ablations go to 8).
const whatIfMaxActuators = 8

// whatIfRPMs are the spindle speeds a query may select, the paper's
// Figure 6 grid plus the stock 7200 (0 keeps the model default).
var whatIfRPMs = map[float64]bool{7200: true, 6200: true, 5200: true, 4200: true}

// Normalize fills the query's defaulted fields with their effective
// values. Serving normalizes before hashing, so "reps omitted" and
// "reps: 1" are the same cache entry.
func (q WhatIfQuery) Normalize() WhatIfQuery {
	if q.Actuators == 0 {
		q.Actuators = 1
	}
	if q.ArrivalScale == 0 {
		q.ArrivalScale = 1
	}
	if q.Requests == 0 {
		q.Requests = DefaultConfig().Requests
	}
	if q.Reps == 0 {
		q.Reps = 1
	}
	if len(q.ArmFaults) == 0 {
		q.ArmFaults = nil
	}
	return q
}

// Validate reports the first problem with the (normalized) query.
func (q WhatIfQuery) Validate() error {
	q = q.Normalize()
	if _, err := trace.WorkloadByName(q.Workload); err != nil {
		return fmt.Errorf("what-if: %w", err)
	}
	switch {
	case q.Actuators < 1 || q.Actuators > whatIfMaxActuators:
		return fmt.Errorf("what-if: actuators %d outside [1,%d]", q.Actuators, whatIfMaxActuators)
	case q.RPM != 0 && !whatIfRPMs[q.RPM]:
		return fmt.Errorf("what-if: rpm %g not in the evaluated grid (7200, 6200, 5200, 4200)", q.RPM)
	case q.ArrivalScale < 0.1 || q.ArrivalScale > 16:
		return fmt.Errorf("what-if: arrival_scale %g outside [0.1,16]", q.ArrivalScale)
	case q.Requests < 1 || q.Requests > 8_000_000:
		return fmt.Errorf("what-if: requests %d outside [1,8000000]", q.Requests)
	case q.Reps < 1 || q.Reps > 64:
		return fmt.Errorf("what-if: reps %d outside [1,64]", q.Reps)
	}
	for i, af := range q.ArmFaults {
		switch {
		case af.AtFrac < 0 || af.AtFrac > 1:
			return fmt.Errorf("what-if: arm_faults[%d].at_frac %g outside [0,1]", i, af.AtFrac)
		case af.Arm < 0 || af.Arm >= q.Actuators:
			return fmt.Errorf("what-if: arm_faults[%d].arm %d outside [0,%d)", i, af.Arm, q.Actuators)
		}
	}
	return nil
}

// Label renders the query's design point the way the paper names it.
func (q WhatIfQuery) Label() string {
	q = q.Normalize()
	l := fmt.Sprintf("%s/SA(%d)", q.Workload, q.Actuators)
	if q.RPM != 0 {
		l += fmt.Sprintf("/%d", int(q.RPM))
	}
	if q.ArrivalScale != 1 {
		l += fmt.Sprintf("/x%g", q.ArrivalScale)
	}
	if len(q.ArmFaults) > 0 {
		l += fmt.Sprintf("/faults%d", len(q.ArmFaults))
	}
	return l
}

// spec resolves the query's workload with its arrival scaling and
// request count applied.
func (q WhatIfQuery) spec() (trace.WorkloadSpec, error) {
	spec, err := trace.WorkloadByName(q.Workload)
	if err != nil {
		return trace.WorkloadSpec{}, err
	}
	spec = spec.WithRequests(q.Requests)
	spec.MeanInterArrivalMs /= q.ArrivalScale
	return spec, nil
}

// WhatIfRun is one replicate's answer: the usual run measurement plus
// the drive's end-of-run actuator state and the fault-plan accounting.
type WhatIfRun struct {
	Run

	// HealthyArms/TotalArms report the actuator state after the replay.
	HealthyArms, TotalArms int
	// FaultsInjected/FaultsRefused count the fault plan's applied and
	// firmware-refused events (a deconfiguration of the last healthy arm
	// is refused, not an error).
	FaultsInjected, FaultsRefused uint64
}

// whatIfCancelBatch is how many arrivals a what-if replay schedules
// between context checks: a canceled job stops scheduling new arrivals
// within one such batch and returns once the in-flight tail drains.
const whatIfCancelBatch = 256

// RunWhatIf executes one replicate of the query at the given seed. The
// result is a pure function of (query, seed); ctx only aborts — a
// canceled run returns ctx's error within one arrival batch and never
// yields a partial result.
func RunWhatIf(ctx context.Context, q WhatIfQuery, seed int64, ob Observe) (*WhatIfRun, error) {
	q = q.Normalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	spec, err := q.spec()
	if err != nil {
		return nil, err
	}

	model := disk.BarracudaES()
	if q.RPM != 0 && q.RPM != model.RPM {
		model = model.WithRPM(q.RPM)
	}
	eng := jobEngine(q.LPParallel)
	rot := &stats.Sample{}
	sink := ob.sink()
	d, err := core.New(eng, model, core.Config{
		Actuators: q.Actuators,
		OnService: func(s, r, x float64) { rot.Add(r) },
		Obs:       sinkOptions(sink, q.Label()),
	})
	if err != nil {
		return nil, err
	}

	var inj *fault.Injector
	if len(q.ArmFaults) > 0 {
		// The fault timeline is expressed in fractions of the nominal
		// duration so it scales with Requests, like the degradation study.
		nominal := spec.MeanInterArrivalMs * float64(q.Requests)
		fs := fault.Spec{}
		for _, af := range q.ArmFaults {
			fs.ArmFaults = append(fs.ArmFaults, fault.ArmFault{AtMs: af.AtFrac * nominal, Arm: af.Arm})
		}
		plan, err := fault.Compile(fs, seed)
		if err != nil {
			return nil, err
		}
		inj, err = fault.NewInjector(eng, plan, fault.Targets{Arms: d},
			sinkOptions(sink, q.Label()+"/fault"))
		if err != nil {
			return nil, err
		}
		inj.Schedule()
	}

	offsets, err := HCSDOffsets(spec)
	if err != nil {
		return nil, err
	}
	g, err := trace.NewGenerator(spec, seed)
	if err != nil {
		return nil, err
	}
	resp, err := replayStreamCtx(ctx, eng, d, trace.RemapStream(g, offsets), whatIfCancelBatch)
	if err != nil {
		return nil, err
	}

	r := &WhatIfRun{
		Run: Run{
			Label:     q.Label(),
			Resp:      resp,
			RotLat:    rot,
			Power:     d.Power(eng.Now()),
			ElapsedMs: eng.Now(),
			Completed: uint64(resp.Count()),
			Events:    ob.events(sink),
			Snap:      ob.snap(d),
		},
		HealthyArms: d.HealthyArms(),
		TotalArms:   q.Actuators,
	}
	if inj != nil {
		r.FaultsInjected = inj.Injected()
		r.FaultsRefused = inj.Refused()
		if r.Snap != nil {
			child := inj.Snapshot()
			r.Snap.Children = append(r.Snap.Children, child)
		}
	}
	return r, nil
}

// WhatIfJobs compiles the query into its replicate fleet jobs. Run them
// with fleet.Options{BaseSeed: q.Seed} so replicate r draws seed
// fleet.DeriveSeed(q.Seed, r) — the per-replicate randomness depends
// only on (query seed, replicate index), never on scheduling, which is
// what lets a serving layer cache the merged answer under the query
// alone.
func WhatIfJobs(q WhatIfQuery, ob Observe) []fleet.Job[*WhatIfRun] {
	q = q.Normalize()
	jobs := make([]fleet.Job[*WhatIfRun], q.Reps)
	for i := range jobs {
		jobs[i] = fleet.Job[*WhatIfRun]{
			Name: fmt.Sprintf("%s/rep%d", q.Label(), i),
			Run: func(ctx context.Context, seed int64) (*WhatIfRun, error) {
				return RunWhatIf(ctx, q, seed, ob)
			},
		}
	}
	return jobs
}

// replayStreamCtx is ReplayStream with a cancellation hook: every
// batch arrivals it polls ctx and, when canceled, stops chaining new
// arrivals so the engine drains only the in-flight tail. The successful
// path schedules exactly the events ReplayStream would — the check can
// only abort a run, never perturb it.
func replayStreamCtx(ctx context.Context, eng simkit.Runner, dev device.Device, s trace.Stream, batch int) (*stats.Sample, error) {
	resp := &stats.Sample{}
	cur, ok := s.Next()
	if !ok {
		eng.Run()
		return resp, trace.Err(s)
	}
	scheduled := 0
	var cancelErr error
	var fire simkit.Event
	fire = func() {
		r := cur
		scheduled++
		if scheduled%batch == 0 {
			if err := ctx.Err(); err != nil {
				cancelErr = err
				return // stop chaining; the queued tail drains and Run returns
			}
		}
		// Chain the next arrival before submitting, so same-instant
		// arrivals keep their generation order ahead of service events.
		if nxt, more := s.Next(); more {
			cur = nxt
			eng.At(nxt.ArrivalMs, fire)
		}
		arrival := r.ArrivalMs
		dev.Submit(r, func(at float64) { resp.Add(at - arrival) })
	}
	eng.At(cur.ArrivalMs, fire)
	eng.Run()
	if cancelErr != nil {
		return nil, cancelErr
	}
	if err := trace.Err(s); err != nil {
		return nil, err
	}
	return resp, nil
}
