package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// WriteCDFTable renders labeled response-time CDFs over the paper's
// buckets, one row per run — the textual form of Figures 2, 4, 5 and 7.
func WriteCDFTable(w io.Writer, title string, runs []Run) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s", "config")
	for _, e := range stats.ResponseBucketEdgesMs {
		fmt.Fprintf(w, " <=%-5g", e)
	}
	fmt.Fprintf(w, " %s\n", "200+")
	for _, r := range runs {
		cdf := r.ResponseCDF()
		fmt.Fprintf(w, "%-16s", r.Label)
		for _, v := range cdf {
			fmt.Fprintf(w, " %6.3f", v)
		}
		fmt.Fprintf(w, " %6.3f\n", 1-cdf[len(cdf)-1])
	}
}

// WritePDFTable renders rotational-latency PDFs over the paper's
// buckets — the textual form of Figure 5's second row.
func WritePDFTable(w io.Writer, title string, runs []Run) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s", "config")
	for _, e := range stats.RotLatencyBucketEdgesMs {
		fmt.Fprintf(w, " <=%-5g", e)
	}
	fmt.Fprintf(w, " %s\n", "11+")
	for _, r := range runs {
		if r.RotLat.Count() == 0 {
			continue
		}
		pdf := r.RotLat.RotLatencyPDF()
		fmt.Fprintf(w, "%-16s", r.Label)
		for _, v := range pdf {
			fmt.Fprintf(w, " %6.3f", v)
		}
		fmt.Fprintln(w)
	}
}

// WritePowerTable renders per-mode average power, one stacked bar per
// run — the textual form of Figures 3 and 6.
func WritePowerTable(w io.Writer, title string, runs []Run) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s %8s\n",
		"config", "idle", "seek", "rotlat", "xfer", "total")
	for _, r := range runs {
		b := r.Power
		fmt.Fprintf(w, "%-16s %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Label,
			b.Watts[power.Idle], b.Watts[power.Seek],
			b.Watts[power.RotLatency], b.Watts[power.Transfer], b.Total())
	}
}

// WriteSummaryTable renders one summary line per run.
func WriteSummaryTable(w io.Writer, title string, runs []Run) {
	fmt.Fprintf(w, "%s\n", title)
	for _, r := range runs {
		fmt.Fprintf(w, "%-16s %s power=%.1fW\n", r.Label, r.Resp.Summarize(), r.Power.Total())
	}
}

// WriteTable1 renders the drive-technology comparison of Table 1.
func WriteTable1(w io.Writer) {
	coeff := power.Default()
	fmt.Fprintln(w, "Table 1: Comparison of disk drive technologies over time")
	fmt.Fprintf(w, "%-32s %10s %8s %10s %5s %10s %9s\n",
		"drive", "density", "diam", "capacity", "act", "power(W)", "xfer MB/s")
	for _, d := range power.Table1() {
		src := "modeled"
		if !d.Modeled() {
			src = "published"
		}
		fmt.Fprintf(w, "%-32s %10.0f %8.1f %10.0f %5d %10.1f %9.1f  (%s)\n",
			d.Name, d.ArealDensityMb, d.DiameterIn, d.CapacityMB,
			d.Actuators, d.PowerW(coeff), d.TransferMBps, src)
	}
}

// WriteRAIDStudy renders Figure 8: the 90th-percentile response curves
// per intensity and the iso-performance power comparison.
func WriteRAIDStudy(w io.Writer, r *RAIDStudyResult) {
	var order []workload.Intensity
	seen := map[workload.Intensity]bool{}
	for _, p := range r.Points {
		if !seen[p.Intensity] {
			seen[p.Intensity] = true
			order = append(order, p.Intensity)
		}
	}
	for _, in := range order {
		fmt.Fprintf(w, "Figure 8: inter-arrival %s — 90th percentile response (ms)\n", in)
		fmt.Fprintf(w, "%-14s", "disks")
		for _, c := range r.DiskCounts {
			fmt.Fprintf(w, " %8d", c)
		}
		fmt.Fprintln(w)
		for _, fam := range r.Families {
			label := "HC-SD"
			if fam > 1 {
				label = fmt.Sprintf("HC-SD-SA(%d)", fam)
			}
			fmt.Fprintf(w, "%-14s", label)
			for _, c := range r.DiskCounts {
				if p, ok := r.Point(in, fam, c); ok {
					fmt.Fprintf(w, " %8.2f", p.P90)
				} else {
					fmt.Fprintf(w, " %8s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "Iso-performance power comparison:")
	for _, be := range r.IsoPerformance() {
		fmt.Fprintf(w, "  %s target p90=%.2f ms:\n", be.Intensity, be.TargetP90)
		for _, c := range be.Configs {
			label := "HC-SD"
			if c.Actuators > 1 {
				label = fmt.Sprintf("SA(%d)", c.Actuators)
			}
			fmt.Fprintf(w, "    %d x %-10s p90=%7.2f ms  power=%7.1f W\n",
				c.Drives, label, c.P90, c.PowerW)
		}
	}
}

// WriteLPRAID renders the partitioned-array scale scenario. The window
// count is part of the canonical output: it is an engine invariant
// (identical at every worker count), and a drift in it flags a change
// in the lookahead/window algorithm even when response times survive.
func WriteLPRAID(w io.Writer, r *LPRAIDResult) {
	level := "RAID-0"
	if r.Degraded {
		level = "RAID-5 degraded"
	}
	fmt.Fprintf(w, "LP-parallel RAID: %d x HC-SD-SA(%d), %s, inter-arrival %s scaled by %d drives\n",
		r.Drives, r.Actuators, level, r.Intensity, r.Drives)
	fmt.Fprintf(w, "  response: %s\n", r.Resp.Summarize())
	fmt.Fprintf(w, "  CDF:      %s\n", stats.FormatCDFRow(stats.ResponseBucketEdgesMs, r.Resp.ResponseCDF()))
	fmt.Fprintf(w, "  power:    %s\n", WriteBreakdownBar(r.Power))
	fmt.Fprintf(w, "  engine:   %d sync windows over %.1f s simulated, %.1f busy LPs/window\n",
		r.Windows, r.ElapsedMs/1000, float64(r.BusyLPs)/float64(r.Windows))
	if r.Degraded {
		fmt.Fprintf(w, "  rebuild:  %d sectors copied over the links, member restored at %.1f ms (%d faults applied)\n",
			r.CopiedSectors, r.RebuildDoneMs, r.Injected)
	}
}

// WriteBreakdownBar renders one power breakdown inline.
func WriteBreakdownBar(b power.Breakdown) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "idle=%.1f seek=%.1f rot=%.1f xfer=%.1f total=%.1fW",
		b.Watts[power.Idle], b.Watts[power.Seek], b.Watts[power.RotLatency],
		b.Watts[power.Transfer], b.Total())
	return sb.String()
}
