package experiments

import (
	"repro/internal/disk"
	"repro/internal/drpm"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AltPowerResult compares the two disk-level power knobs on a workload's
// HC-SD trace: the related-work approach (DRPM — modulate the spindle)
// against the paper's approach (intra-disk parallelism — keep the
// spindle, lower the RPM permanently, add actuators).
type AltPowerResult struct {
	Workload string
	HCSD     Run // conventional 7200 RPM baseline
	DRPM     Run // dynamic-RPM drive
	SA4Low   Run // SA(4) at a permanently reduced 5200 RPM
}

// AltPower runs the comparison. The paper's argument (§5, §7.2) is that
// parallel hardware buys back the performance a slow spindle costs,
// while DRPM must pick between latency (staying slow) and power (spinning
// back up) under sustained server load.
func AltPower(spec trace.WorkloadSpec, cfg Config) (*AltPowerResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := &AltPowerResult{Workload: spec.Name}

	// Baseline: the plain HC-SD.
	bs, err := hcsdStream(spec, cfg)
	if err != nil {
		return nil, err
	}
	base, err := runHCSD("HC-SD", bs, disk.BarracudaES(), disk.Options{})
	if err != nil {
		return nil, err
	}
	out.HCSD = *base

	// DRPM drive with the classic ladder.
	eng := jobEngine(cfg.LPParallel)
	dd, err := drpm.New(eng, disk.BarracudaES(), drpm.Config{
		Levels: []float64{7200, 6200, 5200, 4200},
	})
	if err != nil {
		return nil, err
	}
	ds, err := hcsdStream(spec, cfg)
	if err != nil {
		return nil, err
	}
	resp, err := ReplayStream(eng, dd, ds)
	if err != nil {
		return nil, err
	}
	out.DRPM = Run{
		Label:     "DRPM",
		Resp:      resp,
		RotLat:    &stats.Sample{},
		Power:     dd.Power(eng.Now()),
		ElapsedMs: eng.Now(),
		Completed: uint64(resp.Count()),
	}

	// The paper's answer: SA(4) at a permanently reduced RPM.
	ss, err := hcsdStream(spec, cfg)
	if err != nil {
		return nil, err
	}
	sa, err := saRunOnStream(ss, 4, 5200, cfg)
	if err != nil {
		return nil, err
	}
	out.SA4Low = *sa
	return out, nil
}
