package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// degradationAt renders the full degradation study for one workload at
// the given fleet parallelism: the §8 table plus, when observing, every
// run's JSONL span trace and statistics snapshot (which include the
// fault injector's own spans and counters).
func degradationAt(t *testing.T, parallelism int, lpParallel bool, ob Observe) []byte {
	t.Helper()
	cfg := Config{Requests: 1500, Seed: 11, Parallelism: parallelism,
		LPParallel: lpParallel, Observe: ob}
	dr, err := DegradationStudy(trace.TPCC(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteDegradationTable(&buf, dr)
	for _, r := range dr.Runs {
		if r.Events != nil {
			if err := obs.WriteJSONL(&buf, r.Events); err != nil {
				t.Fatal(err)
			}
		}
		if r.Snap != nil {
			obs.WriteText(&buf, *r.Snap)
		}
	}
	return buf.Bytes()
}

// TestDegradationStudyParallelismInvariant is the study's determinism
// gate: tables, traces, and snapshots must be byte-identical at fleet
// Parallelism 1 and 8, because every random draw comes from cfg.Seed
// rather than from the fleet's per-job seeds or ambient state.
func TestDegradationStudyParallelismInvariant(t *testing.T) {
	ob := Observe{Trace: true, Metrics: true}
	serial := degradationAt(t, 1, false, ob)
	parallel := degradationAt(t, 8, false, ob)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("degradation study differs between Parallelism 1 and 8 (%d vs %d bytes)",
			len(serial), len(parallel))
	}
}

// TestDegradationStudyLPParallelInvariant is the degraded cross-LP
// determinism gate: with LPParallel on, the partitioned rebuild
// scenarios run their windows on a multi-core worker pool (and the
// single-timeline scenarios swap substrate), yet every table line,
// span trace, and snapshot — member deaths, reconstruction reads, and
// rebuild traffic crossing the links included — must be byte-identical
// to the flag-off run.
func TestDegradationStudyLPParallelInvariant(t *testing.T) {
	ob := Observe{Trace: true, Metrics: true}
	off := degradationAt(t, 4, false, ob)
	on := degradationAt(t, 4, true, ob)
	if !bytes.Equal(off, on) {
		t.Fatalf("degradation study differs between LPParallel off and on (%d vs %d bytes)",
			len(off), len(on))
	}
}

// TestDegradationScenariosTakeEffect checks the study actually degrades
// things: the SMART loop and the direct faults deconfigure arms, the
// sector errors land in the surviving member's defect table, and every
// rebuild completes under foreground load with the full member extent
// copied.
func TestDegradationScenariosTakeEffect(t *testing.T) {
	cfg := Config{Requests: 1500, Seed: 11, Parallelism: 4}
	dr, err := DegradationStudy(trace.TPCC(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Runs) != 3+2*len(DefaultDegradationDepths()) {
		t.Fatalf("got %d runs, want %d", len(dr.Runs), 3+2*len(DefaultDegradationDepths()))
	}
	healthy, smart, armed := dr.Runs[0], dr.Runs[1], dr.Runs[2]
	if healthy.HealthyArms != degradationArms {
		t.Fatalf("healthy scenario lost arms: %d/%d", healthy.HealthyArms, degradationArms)
	}
	if smart.HealthyArms != degradationArms-1 {
		t.Fatalf("SMART sentry deconfigured %d arms, want exactly 1",
			degradationArms-smart.HealthyArms)
	}
	if armed.HealthyArms != degradationArms-2 {
		t.Fatalf("direct faults left %d arms, want %d", armed.HealthyArms, degradationArms-2)
	}
	if healthy.Resp.Mean() >= armed.Resp.Mean() {
		t.Fatalf("losing two arms did not hurt: healthy %.3fms vs degraded %.3fms",
			healthy.Resp.Mean(), armed.Resp.Mean())
	}
	for _, r := range dr.Runs[3:] {
		if r.Reallocated == 0 {
			t.Fatalf("%s: no sector errors landed in the defect table", r.Label)
		}
		if r.RebuildDoneMs <= 0 {
			t.Fatalf("%s: rebuild never completed", r.Label)
		}
		if r.CopiedSectors != dr.Runs[3].CopiedSectors {
			t.Fatalf("%s copied %d sectors, depth sweep should copy identical extents (%d)",
				r.Label, r.CopiedSectors, dr.Runs[3].CopiedSectors)
		}
		if r.Completed != uint64(cfg.Requests) {
			t.Fatalf("%s completed %d of %d foreground requests under rebuild",
				r.Label, r.Completed, cfg.Requests)
		}
	}
}

// TestRebuildUnderLoadDeterministic is the end-to-end satellite: a
// member death plus rebuild racing a foreground workload must yield the
// identical copied-sector count, rebuild completion time, and obs
// snapshot for the same seed regardless of fleet parallelism.
func TestRebuildUnderLoadDeterministic(t *testing.T) {
	run := func(parallelism int) DegradationRun {
		cfg := Config{Requests: 1200, Seed: 23, Parallelism: parallelism,
			Observe: Observe{Metrics: true}}
		dr, err := RunDegradationStudy(trace.Websearch(), cfg, []int{8})
		if err != nil {
			t.Fatal(err)
		}
		return dr.Runs[len(dr.Runs)-1]
	}
	a, b := run(1), run(8)
	if a.CopiedSectors != b.CopiedSectors || a.CopiedSectors == 0 {
		t.Fatalf("copied sectors differ or zero: %d vs %d", a.CopiedSectors, b.CopiedSectors)
	}
	if a.RebuildDoneMs != b.RebuildDoneMs || a.RebuildDoneMs <= 0 {
		t.Fatalf("rebuild completion differs or never happened: %v vs %v",
			a.RebuildDoneMs, b.RebuildDoneMs)
	}
	var sa, sb bytes.Buffer
	obs.WriteText(&sa, *a.Snap)
	obs.WriteText(&sb, *b.Snap)
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatalf("obs snapshots differ between Parallelism 1 and 8:\n%s\n---\n%s",
			sa.String(), sb.String())
	}
}
