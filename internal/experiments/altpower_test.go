package experiments

import (
	"testing"

	"repro/internal/trace"
)

func TestAltPowerComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := AltPower(trace.Websearch(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []Run{r.HCSD, r.DRPM, r.SA4Low} {
		if int(run.Completed) != testConfig().Requests {
			t.Fatalf("%s completed %d of %d", run.Label, run.Completed, testConfig().Requests)
		}
	}
	// Under sustained server load, DRPM barely saves power (the drive
	// rarely gets the idle windows it needs), while the reduced-RPM
	// parallel drive saves power structurally AND outperforms the
	// baseline — the paper's §5/§7.2 argument.
	if r.SA4Low.Power.Total() >= r.HCSD.Power.Total() {
		t.Errorf("SA(4)/5200 power %.1f not below HC-SD %.1f",
			r.SA4Low.Power.Total(), r.HCSD.Power.Total())
	}
	if r.SA4Low.Resp.Mean() >= r.HCSD.Resp.Mean() {
		t.Errorf("SA(4)/5200 mean %.2f not below HC-SD %.2f",
			r.SA4Low.Resp.Mean(), r.HCSD.Resp.Mean())
	}
	// And it must dominate DRPM on at least one axis while matching or
	// beating it on the other.
	perfBetter := r.SA4Low.Resp.Mean() <= r.DRPM.Resp.Mean()
	powerNotWorse := r.SA4Low.Power.Total() <= r.DRPM.Power.Total()*1.15
	if !perfBetter || !powerNotWorse {
		t.Errorf("SA(4)/5200 (mean %.2f, %.1f W) does not dominate DRPM (mean %.2f, %.1f W)",
			r.SA4Low.Resp.Mean(), r.SA4Low.Power.Total(),
			r.DRPM.Resp.Mean(), r.DRPM.Power.Total())
	}
}

func TestAltPowerValidation(t *testing.T) {
	if _, err := AltPower(trace.Websearch(), Config{}); err == nil {
		t.Fatalf("invalid config accepted")
	}
}
