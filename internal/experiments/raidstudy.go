package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/disk"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/raid"
	"repro/internal/simkit"
	"repro/internal/workload"
)

// StripeUnitSectors is the RAID-0 stripe unit used in the §7.3 arrays
// (64 KB, a common array configuration).
const StripeUnitSectors = 128

// RAIDPoint is one point of Figure 8: an array configuration under one
// load intensity.
type RAIDPoint struct {
	Intensity workload.Intensity
	Actuators int // 1 = conventional HC-SD drives
	Drives    int
	P90       float64 // 90th percentile response time, ms
	Power     power.Breakdown
	MeanResp  float64

	// Events and Snap follow experiments.Run: the point's span trace
	// and array snapshot, recorded only when Config.Observe asks.
	Events []obs.Event
	Snap   *obs.Snapshot
}

// Label names the point's drive family the way the paper does.
func (p RAIDPoint) Label() string {
	if p.Actuators == 1 {
		return "HC-SD"
	}
	return fmt.Sprintf("HC-SD-SA(%d)", p.Actuators)
}

// RAIDStudyResult holds all Figure 8 points.
type RAIDStudyResult struct {
	DiskCounts []int
	Families   []int // actuator counts
	Points     []RAIDPoint
}

// Point finds a measured point; ok is false if it was not run.
func (r *RAIDStudyResult) Point(in workload.Intensity, actuators, drives int) (RAIDPoint, bool) {
	for _, p := range r.Points {
		if p.Intensity == in && p.Actuators == actuators && p.Drives == drives {
			return p, true
		}
	}
	return RAIDPoint{}, false
}

// DefaultRAIDDiskCounts returns Figure 8's x-axis.
func DefaultRAIDDiskCounts() []int { return []int{1, 2, 4, 8, 16} }

// DefaultRAIDFamilies returns the drive families of Figure 8:
// conventional, 2-actuator, and 4-actuator.
func DefaultRAIDFamilies() []int { return []int{1, 2, 4} }

// RAIDStudyOpts selects the axes of the §7.3 study. The zero value of
// each field means its paper default, so opts compose piecemeal:
// override just the axis an experiment varies.
type RAIDStudyOpts struct {
	// DiskCounts is the array sizes to sweep (default Figure 8's
	// 1, 2, 4, 8, 16).
	DiskCounts []int
	// Families is the drive families as actuator counts (default
	// conventional, 2- and 4-actuator).
	Families []int
	// Intensities is the load levels (default the paper's three).
	Intensities []workload.Intensity
}

// withDefaults resolves unset axes to the paper's.
func (o RAIDStudyOpts) withDefaults() RAIDStudyOpts {
	if o.DiskCounts == nil {
		o.DiskCounts = DefaultRAIDDiskCounts()
	}
	if o.Families == nil {
		o.Families = DefaultRAIDFamilies()
	}
	if o.Intensities == nil {
		o.Intensities = workload.Intensities()
	}
	return o
}

// RAIDStudy runs the §7.3 evaluation over the paper's default axes:
// RAID-0 arrays of 1..16 drives, built from conventional and intra-disk
// parallel drives, under the synthetic workloads at the paper's three
// load intensities. It is RunRAIDStudy with zero opts.
func RAIDStudy(cfg Config) (*RAIDStudyResult, error) {
	return RunRAIDStudy(cfg, RAIDStudyOpts{})
}

// RunRAIDStudy runs the §7.3 evaluation over the opts' axes (zero-value
// fields fall back to the paper's defaults). The dataset is fixed at
// one drive's capacity so every array size serves the same logical
// space.
func RunRAIDStudy(cfg Config, opts RAIDStudyOpts) (*RAIDStudyResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	diskCounts, families, intensities := opts.DiskCounts, opts.Families, opts.Intensities
	model := disk.BarracudaES()
	// Dataset: the capacity of a single drive (sectors usable in every
	// array size).
	probeEng := simkit.New()
	probe, err := disk.New(probeEng, model, disk.Options{})
	if err != nil {
		return nil, err
	}
	dataset := probe.Capacity()

	out := &RAIDStudyResult{DiskCounts: diskCounts, Families: families}

	// Every array simulation of an intensity replays the same
	// deterministic stream, synthesized privately per job as the replay
	// pulls arrivals; the full (intensity, family, array size) cross
	// product fans out through the fleet with points collected in the
	// canonical nested order. Validate each spec up front so a bad
	// config fails before the fan-out.
	for _, in := range intensities {
		if err := workload.Paper(in, dataset).WithRequests(cfg.Requests).Validate(); err != nil {
			return nil, err
		}
	}
	var jobs []fleet.Job[RAIDPoint]
	for _, in := range intensities {
		for _, fam := range families {
			for _, count := range diskCounts {
				in, fam, count := in, fam, count
				jobs = append(jobs, fleet.Job[RAIDPoint]{
					Name: fmt.Sprintf("raid/%s/SA(%d)x%d", in, fam, count),
					Run: func(context.Context, int64) (RAIDPoint, error) {
						eng := jobEngine(cfg.LPParallel)
						sink := cfg.Observe.sink()
						members := make([]device.Device, count)
						for i := range members {
							d, err := core.New(eng, model, core.Config{
								Actuators: fam,
								Obs:       sinkOptions(sink, fmt.Sprintf("sa%dx%d/m%d", fam, count, i)),
							})
							if err != nil {
								return RAIDPoint{}, err
							}
							members[i] = d
						}
						layout, err := raid.NewRAID0(count, dataset, StripeUnitSectors)
						if err != nil {
							return RAIDPoint{}, err
						}
						arr, err := raid.NewArray(layout, members)
						if err != nil {
							return RAIDPoint{}, err
						}
						g, err := workload.NewGenerator(workload.Paper(in, dataset).WithRequests(cfg.Requests), cfg.Seed)
						if err != nil {
							return RAIDPoint{}, err
						}
						resp, err := ReplayStream(eng, arr, g)
						if err != nil {
							return RAIDPoint{}, err
						}
						return RAIDPoint{
							Intensity: in,
							Actuators: fam,
							Drives:    count,
							P90:       resp.Percentile(90),
							MeanResp:  resp.Mean(),
							Power:     arr.Power(eng.Now()),
							Events:    cfg.Observe.events(sink),
							Snap:      cfg.Observe.snap(arr),
						}, nil
					},
				})
			}
		}
	}
	points, err := fleet.Run(jobs, cfg.fleetOptions())
	if err != nil {
		return nil, err
	}
	out.Points = points
	return out, nil
}

// BreakEven is one intensity's iso-performance comparison: the smallest
// array of each family whose 90th-percentile response time matches the
// steady-state performance of the conventional array.
type BreakEven struct {
	Intensity workload.Intensity
	TargetP90 float64
	Configs   []BreakEvenConfig
}

// BreakEvenConfig is one family's break-even array.
type BreakEvenConfig struct {
	Actuators int
	Drives    int
	P90       float64
	PowerW    float64
}

// IsoPerformance computes the paper's iso-performance power comparison
// from the study's points: the target is the conventional family's
// steady-state (largest-array) P90; each family's break-even point is
// the smallest array within 10% of that target.
func (r *RAIDStudyResult) IsoPerformance() []BreakEven {
	byIntensity := map[workload.Intensity]bool{}
	var order []workload.Intensity
	for _, p := range r.Points {
		if !byIntensity[p.Intensity] {
			byIntensity[p.Intensity] = true
			order = append(order, p.Intensity)
		}
	}
	var out []BreakEven
	for _, in := range order {
		maxCount := r.DiskCounts[len(r.DiskCounts)-1]
		steady, ok := r.Point(in, 1, maxCount)
		if !ok {
			continue
		}
		be := BreakEven{Intensity: in, TargetP90: steady.P90}
		for _, fam := range r.Families {
			for _, count := range r.DiskCounts {
				p, ok := r.Point(in, fam, count)
				if !ok {
					continue
				}
				if p.P90 <= steady.P90*1.10 {
					be.Configs = append(be.Configs, BreakEvenConfig{
						Actuators: fam,
						Drives:    count,
						P90:       p.P90,
						PowerW:    p.Power.Total(),
					})
					break
				}
			}
		}
		out = append(out, be)
	}
	return out
}
