package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/simkit"
	"repro/internal/trace"
)

func smallDrive(t *testing.T, eng *simkit.Engine) *disk.Drive {
	t.Helper()
	m := disk.BarracudaES()
	m.Name = "closed-test"
	m.Geom.Cylinders = 2000
	m.Geom.Zones = 4
	m.Geom.OuterSPT = 300
	m.Geom.InnerSPT = 200
	d, err := disk.New(eng, m, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestReplayClosedValidation(t *testing.T) {
	eng := simkit.New()
	d := smallDrive(t, eng)
	gen := func(c, s int) trace.Request { return trace.Request{LBA: 0, Sectors: 8} }
	if _, err := ReplayClosed(eng, d, 0, 10, 0, gen); err == nil {
		t.Fatalf("zero clients accepted")
	}
	if _, err := ReplayClosed(eng, d, 1, 0, 0, gen); err == nil {
		t.Fatalf("zero requests accepted")
	}
	if _, err := ReplayClosed(eng, d, 1, 10, -1, gen); err == nil {
		t.Fatalf("negative think time accepted")
	}
	if _, err := ReplayClosed(eng, d, 1, 10, 0, nil); err == nil {
		t.Fatalf("nil generator accepted")
	}
}

func TestReplayClosedCompletesExactly(t *testing.T) {
	eng := simkit.New()
	d := smallDrive(t, eng)
	rng := rand.New(rand.NewSource(1))
	resp, err := ReplayClosed(eng, d, 4, 500, 1, func(c, s int) trace.Request {
		return trace.Request{LBA: rng.Int63n(d.Capacity() - 64), Sectors: 8, Read: s%2 == 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count() != 500 {
		t.Fatalf("completed %d of 500", resp.Count())
	}
}

func TestReplayClosedSelfLimits(t *testing.T) {
	// A single client can never queue behind itself: the drive's queue
	// high-water mark stays at 1 and responses stay near raw service
	// time regardless of how slow the device is.
	eng := simkit.New()
	d := smallDrive(t, eng)
	rng := rand.New(rand.NewSource(2))
	resp, err := ReplayClosed(eng, d, 1, 300, 0, func(c, s int) trace.Request {
		return trace.Request{LBA: rng.Int63n(d.Capacity() - 64), Sectors: 8, Read: false}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Snapshot().Queue.Max > 1 {
		t.Fatalf("single closed-loop client queued %d deep", d.Snapshot().Queue.Max)
	}
	// Worst-case raw service on this model is ~overhead + full stroke +
	// a revolution ≈ 26 ms; anything above that means queueing leaked in.
	if resp.Percentile(99) > 26 {
		t.Fatalf("closed-loop p99 %v: queueing leaked in", resp.Percentile(99))
	}
}

func TestReplayClosedMoreClientsMoreLoad(t *testing.T) {
	run := func(clients int) float64 {
		eng := simkit.New()
		d := smallDrive(t, eng)
		rng := rand.New(rand.NewSource(3))
		resp, err := ReplayClosed(eng, d, clients, 400, 0, func(c, s int) trace.Request {
			return trace.Request{LBA: rng.Int63n(d.Capacity() - 64), Sectors: 8, Read: false}
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Mean()
	}
	one := run(1)
	eight := run(8)
	if eight <= one {
		t.Fatalf("8 clients mean %v not above 1 client %v", eight, one)
	}
}

func TestReplayClosedThinkTimeReducesLoad(t *testing.T) {
	run := func(thinkMs float64) float64 {
		eng := simkit.New()
		d := smallDrive(t, eng)
		rng := rand.New(rand.NewSource(4))
		resp, err := ReplayClosed(eng, d, 8, 400, thinkMs, func(c, s int) trace.Request {
			return trace.Request{LBA: rng.Int63n(d.Capacity() - 64), Sectors: 8, Read: false}
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Mean()
	}
	busy := run(0)
	relaxed := run(50)
	if relaxed >= busy {
		t.Fatalf("think time did not reduce mean response: %v vs %v", relaxed, busy)
	}
}
