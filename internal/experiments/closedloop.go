package experiments

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/simkit"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ReplayClosed drives a device with a closed-loop client population: each
// of `clients` streams issues its next request thinkMs after its previous
// one completes. This is how batch workloads such as the TPC-H power test
// (22 queries executed consecutively) load a storage system — throughput
// self-limits instead of queueing unboundedly, which is why TPC-H
// survives the MD→HC-SD migration.
//
// gen produces the i-th request of a client's stream; its ArrivalMs is
// ignored. The returned sample holds per-request response times.
func ReplayClosed(eng simkit.Runner, dev device.Device, clients, totalRequests int,
	thinkMs float64, gen func(client, seq int) trace.Request) (*stats.Sample, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("experiments: clients %d must be positive", clients)
	}
	if totalRequests <= 0 {
		return nil, fmt.Errorf("experiments: totalRequests %d must be positive", totalRequests)
	}
	if thinkMs < 0 {
		return nil, fmt.Errorf("experiments: thinkMs %v must be nonnegative", thinkMs)
	}
	if gen == nil {
		return nil, fmt.Errorf("experiments: gen must not be nil")
	}

	resp := &stats.Sample{}
	issued := 0
	var issue func(client int)
	issue = func(client int) {
		if issued >= totalRequests {
			return
		}
		seq := issued
		issued++
		r := gen(client, seq)
		start := eng.Now()
		dev.Submit(r, func(at float64) {
			resp.Add(at - start)
			if thinkMs > 0 {
				eng.After(thinkMs, func() { issue(client) })
			} else {
				issue(client)
			}
		})
	}
	for c := 0; c < clients; c++ {
		c := c
		eng.At(eng.Now(), func() { issue(c) })
	}
	eng.Run()
	return resp, nil
}
