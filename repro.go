// Package repro is a from-scratch Go implementation of the system
// described in "Intra-Disk Parallelism: An Idea Whose Time Has Come"
// (Sankar, Gurumurthi, Stan — ISCA 2008): a detailed event-driven disk
// drive simulator with electro-mechanical power models, multi-actuator
// (intra-disk parallel) drive models expressed in the paper's DASH
// taxonomy, RAID array models, workload synthesizers shaped like the
// paper's commercial traces, and experiment drivers that regenerate every
// table and figure of the paper's evaluation.
//
// This file is the public facade: it re-exports the library's stable
// surface so applications can depend on a single import. The underlying
// packages live in internal/ and are documented individually.
//
// # Quick start
//
//	eng := repro.NewEngine()
//	drv, err := repro.NewSADrive(eng, repro.BarracudaES(), 4) // HC-SD-SA(4)
//	if err != nil { ... }
//	var resp repro.Sample
//	eng.At(0, func() {
//	    drv.Submit(repro.Request{LBA: 0, Sectors: 8, Read: true},
//	        func(at float64) { resp.Add(at) })
//	})
//	eng.Run()
package repro

import (
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/device"
	"repro/internal/disk"
	"repro/internal/drpm"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/raid"
	"repro/internal/simkit"
	"repro/internal/smart"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Simulation engine.

// Engine is the discrete-event simulation clock all devices share.
type Engine = simkit.Engine

// NewEngine returns an empty engine with the clock at time zero.
func NewEngine() *Engine { return simkit.New() }

// ---------------------------------------------------------------------
// Requests, traces and workloads.

// Request is one I/O request presented to a storage device.
type Request = trace.Request

// Trace is a request stream ordered by arrival time.
type Trace = trace.Trace

// WorkloadSpec parameterizes one of the paper's commercial workloads.
type WorkloadSpec = trace.WorkloadSpec

// The paper's four commercial workloads (Table 2).
var (
	Financial = trace.Financial
	Websearch = trace.Websearch
	TPCC      = trace.TPCC
	TPCH      = trace.TPCH
	Workloads = trace.Workloads
)

// GenerateTrace synthesizes a workload trace deterministically.
func GenerateTrace(spec WorkloadSpec, seed int64) (Trace, error) {
	return trace.Generate(spec, seed)
}

// TraceStream is a pull-based request stream; trace readers, workload
// generators, and remapped streams all implement it.
type TraceStream = trace.Stream

// TraceFormat identifies an on-disk trace format (native, spc, msr,
// blkparse).
type TraceFormat = trace.Format

// TraceReader is a streaming O(1)-memory trace ingester for any
// supported on-disk format, with unit normalization and arrival-order
// enforcement at the ingestion boundary.
type TraceReader = trace.Reader

// TraceReaderOpts tunes ingestion (e.g. the bounded reordering window
// for near-sorted captures).
type TraceReaderOpts = trace.ReaderOpts

// OpenTrace sniffs the format of the trace on r and returns a
// streaming reader for it; OpenTraceFile does the same for a path (the
// caller owns Close).
var (
	OpenTrace     = trace.Open
	OpenTraceFile = trace.OpenFile
)

// TraceStreamErr reports the terminal error of a stream that carries
// one (ingestion failures); plain streams report nil.
var TraceStreamErr = trace.Err

// AnalyzeTraceStream computes a trace's statistics in one streaming
// pass; FitWorkload inverts the synthesizer's parameterization against
// a streamed profile (ProfileTraceStream).
var (
	AnalyzeTraceStream = trace.AnalyzeStream
	ProfileTraceStream = trace.ProfileStream
	FitWorkload        = trace.FitWorkload
)

// SyntheticSpec parameterizes the §7.3 synthetic streams.
type SyntheticSpec = workload.Spec

// Intensity names the paper's three synthetic load levels.
type Intensity = workload.Intensity

// The paper's load levels (8, 4 and 1 ms mean inter-arrival).
const (
	Light    = workload.Light
	Moderate = workload.Moderate
	Heavy    = workload.Heavy
)

// PaperSynthetic returns the §7.3 synthetic workload spec.
func PaperSynthetic(in Intensity, capacitySectors int64) SyntheticSpec {
	return workload.Paper(in, capacitySectors)
}

// GenerateSynthetic synthesizes a §7.3 stream deterministically.
func GenerateSynthetic(spec SyntheticSpec, seed int64) (Trace, error) {
	return workload.Generate(spec, seed)
}

// ---------------------------------------------------------------------
// Drive models and devices.

// Device is any simulated storage device: a drive or an array.
type Device = device.Device

// Done is a request-completion callback.
type Done = device.Done

// DriveModel is the static description of a drive product.
type DriveModel = disk.Model

// Named drive models used throughout the paper's evaluation.
var (
	// BarracudaES is the paper's 750 GB high-capacity drive (HC-SD).
	BarracudaES = disk.BarracudaES
	// Drive10K18GB is the Financial/Websearch arrays' member drive.
	Drive10K18GB = disk.Drive10K18GB
	// Drive10K37GB is the TPC-C array's member drive.
	Drive10K37GB = disk.Drive10K37GB
	// Drive7200x36GB is the TPC-H array's member drive.
	Drive7200x36GB = disk.Drive7200x36GB
)

// Drive is a conventional single-actuator disk drive.
type Drive = disk.Drive

// DriveOptions tunes a conventional drive.
type DriveOptions = disk.Options

// ZeroedScale marks a seek/rotation scale of exactly zero (Figure 4's
// S=0 and R=0 cases); an unset scale means 1.0.
const ZeroedScale = disk.ZeroedScale

// NewDrive attaches a conventional drive to the engine.
func NewDrive(eng *Engine, model DriveModel, opts DriveOptions) (*Drive, error) {
	return disk.New(eng, model, opts)
}

// ---------------------------------------------------------------------
// Intra-disk parallelism (the paper's contribution).

// DASH names a design point in the paper's taxonomy (Dk·Al·Sm·Hn).
type DASH = core.DASH

// ParseDASH parses a canonical taxonomy name such as "D1A4S1H1".
func ParseDASH(s string) (DASH, error) { return core.ParseDASH(s) }

// SATaxonomy returns the taxonomy point of the paper's HC-SD-SA(n)
// family: D1·An·S1·H1.
func SATaxonomy(n int) DASH { return core.SA(n) }

// ParallelDrive is an intra-disk parallel (multi-actuator) drive.
type ParallelDrive = core.ParallelDrive

// ParallelConfig configures a parallel drive, including the relaxed
// multi-arm-motion and multi-channel variants and arm placement.
type ParallelConfig = core.Config

// NewParallelDrive attaches a configured parallel drive to the engine.
func NewParallelDrive(eng *Engine, model DriveModel, cfg ParallelConfig) (*ParallelDrive, error) {
	return core.New(eng, model, cfg)
}

// NewSADrive attaches the paper's HC-SD-SA(n) design point: n actuators,
// single arm in motion, single data channel, SPTF scheduling.
func NewSADrive(eng *Engine, model DriveModel, actuators int) (*ParallelDrive, error) {
	return core.NewSA(eng, model, actuators)
}

// ---------------------------------------------------------------------
// Arrays.

// Layout maps array-level requests onto member disks.
type Layout = raid.Layout

// Array is a storage array over member devices; it is itself a Device.
type Array = raid.Array

// Array layout constructors.
var (
	NewJBOD  = raid.NewJBOD
	NewRAID0 = raid.NewRAID0
	NewRAID1 = raid.NewRAID1
	NewRAID5 = raid.NewRAID5
)

// NewArray binds a layout to its member devices.
func NewArray(layout Layout, members []Device) (*Array, error) {
	return raid.NewArray(layout, members)
}

// ---------------------------------------------------------------------
// Statistics and power.

// Sample accumulates observations (response times, latencies).
type Sample = stats.Sample

// Summary is a compact numeric summary of a sample.
type Summary = stats.Summary

// PowerBreakdown is a per-mode average-power decomposition.
type PowerBreakdown = power.Breakdown

// ResponseBucketEdgesMs are the paper's response-time CDF bucket edges.
var ResponseBucketEdgesMs = stats.ResponseBucketEdgesMs

// ---------------------------------------------------------------------
// Experiments (tables and figures).

// ExperimentConfig scales the paper's experiments.
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig returns the standard experiment scale.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// Experiment drivers, one per table/figure group; see internal/experiments.
var (
	RunLimitStudy       = experiments.LimitStudy       // Figures 2-3
	RunBottleneck       = experiments.Bottleneck       // Figure 4
	RunMultiActuator    = experiments.MultiActuator    // Figure 5
	RunReducedRPM       = experiments.ReducedRPM       // Figures 6-7
	RunRAIDStudy        = experiments.RAIDStudy        // Figure 8
	RunDegradationStudy = experiments.DegradationStudy // §8 fault study
)

// DegradationResult is one workload's §8 graceful-degradation study.
type DegradationResult = experiments.DegradationResult

// DegradationRun is one degradation scenario's measurement.
type DegradationRun = experiments.DegradationRun

// WriteDegradationTable renders a degradation study as text.
var WriteDegradationTable = experiments.WriteDegradationTable

// DefaultDegradationDepths returns the rebuild depths the study sweeps.
var DefaultDegradationDepths = experiments.DefaultDegradationDepths

// ---------------------------------------------------------------------
// Observability (internal/obs).

// Instrumented is the uniform statistics surface: any component that
// reports a StatsSnapshot. All devices in this library implement it.
type Instrumented = device.Instrumented

// StatsSnapshot is the typed statistics snapshot every instrumented
// component returns; composite devices nest members as children.
type StatsSnapshot = obs.Snapshot

// TraceEvent is one span of a request's lifecycle
// (submit/queue/seek/rotate/transfer/complete, with actuator ids).
type TraceEvent = obs.Event

// TraceSink receives span events; wire one into a drive's options to
// trace its requests (nil = tracing off at zero cost).
type TraceSink = obs.Sink

// ObsOptions is the observability hookup a device constructor accepts.
type ObsOptions = obs.Options

// Observe selects what experiment runs record (trace and/or metrics).
type Observe = experiments.Observe

// NewJSONLTraceSink streams span events as JSON lines.
var NewJSONLTraceSink = obs.NewJSONLSink

// MemoryTraceSink buffers span events in memory.
type MemoryTraceSink = obs.MemorySink

// TraceLifecycles reconstructs per-request time decompositions from a
// span stream.
var TraceLifecycles = obs.Lifecycles

// MergeSnapshots folds per-job snapshots into one deterministic
// roll-up, in submission order.
var MergeSnapshots = fleet.MergeSnapshots

// WriteSnapshotText renders a snapshot as an indented text tree.
var WriteSnapshotText = obs.WriteText

// ---------------------------------------------------------------------
// Cost model (§9).

// CostRange is a low/high price band in US dollars.
type CostRange = cost.Range

// DriveCost reports the material-cost band of a drive (Table 9a).
func DriveCost(platters, actuators int) (CostRange, error) {
	return cost.DriveCost(platters, actuators)
}

// IsoPerformanceCosts evaluates Figure 9(b)'s three configurations.
func IsoPerformanceCosts() ([]CostRange, error) { return cost.IsoPerformanceCosts() }

// ---------------------------------------------------------------------
// Reliability extensions (§8 machinery).

// SMARTMonitor tracks one component's health attributes and predicts
// impending failure (internal/smart).
type SMARTMonitor = smart.Monitor

// SMARTSentry polls monitors on the simulation clock and reports
// predicted failures, e.g. to ParallelDrive.FailArm.
type SMARTSentry = smart.Sentry

// SMARTAttribute identifies a monitored health metric.
type SMARTAttribute = smart.Attribute

// Monitored attributes relevant to the arm/head assembly.
const (
	ReallocatedSectors = smart.ReallocatedSectors
	SeekErrorRate      = smart.SeekErrorRate
	SpinRetries        = smart.SpinRetries
	HeadFlyingHours    = smart.HeadFlyingHours
)

// NewSMARTMonitor builds a healthy monitor (nil thresholds = defaults).
func NewSMARTMonitor(seed int64, thresholds map[SMARTAttribute]float64) *SMARTMonitor {
	return smart.NewMonitor(seed, thresholds)
}

// NewSMARTSentry builds a sentry polling the monitors every periodMs.
func NewSMARTSentry(eng *Engine, monitors []*SMARTMonitor, periodMs float64, onPredict func(int)) (*SMARTSentry, error) {
	return smart.NewSentry(eng, monitors, periodMs, onPredict)
}

// FaultSpec declaratively describes a fault scenario: latent sector
// errors, SMART attribute-drift onsets, actuator deconfigurations, and
// a whole-member death with its rebuild (internal/fault).
type FaultSpec = fault.Spec

// Fault-scenario building blocks for FaultSpec.
type (
	FaultSectorErrors = fault.SectorErrors
	FaultDrift        = fault.Drift
	FaultArm          = fault.ArmFault
	FaultDeath        = fault.Death
)

// FaultPlan is a compiled, time-ordered fault schedule.
type FaultPlan = fault.Plan

// CompileFaults draws a spec's randomized elements from the seed and
// flattens the scenario into a deterministic plan.
var CompileFaults = fault.Compile

// FaultTargets binds each fault class to the component it acts on.
type FaultTargets = fault.Targets

// FaultInjector arms a compiled plan on an engine and applies each
// event at its planned simulated timestamp.
type FaultInjector = fault.Injector

// NewFaultInjector validates the plan's targets and builds an injector;
// call Schedule before running the engine.
func NewFaultInjector(eng *Engine, plan FaultPlan, targets FaultTargets, ob ObsOptions) (*FaultInjector, error) {
	return fault.NewInjector(eng, plan, targets, ob)
}

// ThermalEnvelope is the steady-state drive thermal model that motivates
// the paper's "spindle speeds will not rise" premise (internal/thermal).
type ThermalEnvelope = thermal.Envelope

// DefaultThermalEnvelope returns the calibrated server-enclosure
// envelope.
func DefaultThermalEnvelope() ThermalEnvelope { return thermal.Default() }

// ---------------------------------------------------------------------
// Baselines and substrates beyond the paper's core evaluation.

// DRPMDrive is the dynamic-RPM drive — the related-work power-management
// baseline (internal/drpm).
type DRPMDrive = drpm.Drive

// DRPMConfig tunes the DRPM policy (RPM ladder, idle threshold,
// spin-up trigger, transition time).
type DRPMConfig = drpm.Config

// NewDRPMDrive attaches a DRPM drive built from the base model.
func NewDRPMDrive(eng *Engine, model DriveModel, cfg DRPMConfig) (*DRPMDrive, error) {
	return drpm.New(eng, model, cfg)
}

// Bus is a shared storage interconnect with finite bandwidth.
type Bus = bus.Bus

// NewBus builds a bus with the given bandwidth (MB/s) and per-transfer
// arbitration overhead (ms).
func NewBus(eng *Engine, bandwidthMBps, overheadMs float64) (*Bus, error) {
	return bus.New(eng, bandwidthMBps, overheadMs)
}

// AttachBus wraps a device so every completion also crosses the bus.
func AttachBus(dev Device, b *Bus, sectorBytes int) (Device, error) {
	return bus.Attach(dev, b, sectorBytes)
}

// RunClosedLoop drives a device with a closed-loop client population
// (see experiments.ReplayClosed).
var RunClosedLoop = experiments.ReplayClosed

// CalibrationResult reports how faithfully the synthesizer reproduces a
// real trace: statistical deltas, both replays, and the KS distance
// between their response-time distributions.
type CalibrationResult = experiments.CalibrationResult

// RunCalibrationStudy ingests a real trace, fits synthesizer parameters
// to its streamed profile, and replays both through the same drive;
// WriteCalibrationTable renders the divergence table.
var (
	RunCalibrationStudy   = experiments.CalibrationStudy
	WriteCalibrationTable = experiments.WriteCalibrationTable
)
